"""Cross-layer consistency checks.

The reproduction couples three models (DES system, trace-driven
microarchitecture, analytic queueing); each coupling is a place where a
bug could silently skew results.  This module packages the invariants
that must hold at any converged operating point as runnable checks, so
a user extending the system can validate a :class:`ConfigResult` in one
call — the same checks the integration tests enforce.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.core.ironlaw import tps as ironlaw_tps
from repro.hw.machine import machine_by_name

if TYPE_CHECKING:  # avoid a core <-> experiments import cycle
    from repro.experiments.records import ConfigResult


@dataclass(frozen=True)
class Check:
    """One named invariant's outcome."""

    name: str
    passed: bool
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        marker = "PASS" if self.passed else "FAIL"
        return f"[{marker}] {self.name}: {self.detail}"


def check_iron_law(result: "ConfigResult", tolerance: float = 0.10) -> Check:
    """DES throughput equals the iron law at the measured utilization."""
    try:
        machine = machine_by_name(result.machine)
    except KeyError:
        # Derived machines ("xeon-mp-quad/l3=2048KB") are not in the
        # registry; their frequency matches the base preset.
        base_name = result.machine.split("/")[0]
        try:
            machine = machine_by_name(base_name)
        except KeyError:
            return Check("iron-law", True,
                         f"skipped: unknown machine {result.machine!r}")
    ideal = ironlaw_tps(result.processors, machine.frequency_hz,
                        result.ipx, result.effective_cpi)
    predicted = ideal * result.system.cpu_utilization
    error = abs(result.tps - predicted) / predicted
    return Check(
        "iron-law", error <= tolerance,
        f"measured {result.tps:.0f} TPS vs predicted {predicted:.0f} "
        f"({error:.1%} error, tolerance {tolerance:.0%})")


def check_cpi_is_breakdown_sum(result: "ConfigResult",
                               tolerance: float = 1e-6) -> Check:
    """The converged CPI equals the sum of its Table 4 components."""
    total = result.cpi.breakdown.total
    error = abs(result.cpi.cpi - total)
    return Check("cpi-breakdown-sum", error <= tolerance,
                 f"CPI {result.cpi.cpi:.4f} vs component sum {total:.4f}")


def check_miss_hierarchy(result: "ConfigResult") -> Check:
    """Misses can only shrink down the hierarchy: L3 <= L2 rates."""
    rates = result.rates
    ok = rates.l3_misses_per_instr <= rates.l2_misses_per_instr + 1e-12
    return Check("miss-hierarchy", ok,
                 f"L2 {rates.l2_misses_per_instr:.5f} >= "
                 f"L3 {rates.l3_misses_per_instr:.5f} per instruction")


def check_busy_shares(result: "ConfigResult") -> Check:
    """User and OS busy shares partition busy time."""
    total = result.system.user_busy_share + result.system.os_busy_share
    ok = abs(total - 1.0) < 1e-6 or total == 0.0
    return Check("busy-shares", ok, f"user+OS busy share = {total:.6f}")


def check_switch_floor(result: "ConfigResult") -> Check:
    """Each physical read blocks once, so switches >= reads per txn."""
    system = result.system
    ok = (system.context_switches_per_txn
          >= system.reads_per_txn - 0.25)  # Poisson sampling slack
    return Check("switch-floor", ok,
                 f"{system.context_switches_per_txn:.2f} switches vs "
                 f"{system.reads_per_txn:.2f} reads per txn")


def check_utilization_bounds(result: "ConfigResult") -> Check:
    """Utilizations are fractions."""
    system = result.system
    values = (system.cpu_utilization, system.disk_utilization,
              result.cpi.bus_utilization)
    ok = all(0.0 <= v <= 1.0 + 1e-9 for v in values)
    return Check("utilization-bounds", ok,
                 f"cpu={values[0]:.3f} disk={values[1]:.3f} "
                 f"bus={values[2]:.3f}")


def check_log_volume(result: "ConfigResult", low_kb: float = 3.0,
                     high_kb: float = 10.0) -> Check:
    """Redo volume stays in the workload's ~6 KB/txn band."""
    kb = result.system.log_bytes_per_txn / 1024.0
    return Check("log-volume", low_kb <= kb <= high_kb,
                 f"{kb:.1f} KB/txn (band {low_kb}-{high_kb})")


ALL_CHECKS: tuple[Callable[["ConfigResult"], Check], ...] = (
    check_iron_law,
    check_cpi_is_breakdown_sum,
    check_miss_hierarchy,
    check_busy_shares,
    check_switch_floor,
    check_utilization_bounds,
    check_log_volume,
)


def validate_result(result: "ConfigResult") -> list[Check]:
    """Run every invariant; returns all outcomes (passed and failed)."""
    return [check(result) for check in ALL_CHECKS]


def assert_valid(result: "ConfigResult") -> None:
    """Raise AssertionError listing any failed invariants."""
    failures = [check for check in validate_result(result)
                if not check.passed]
    if failures:
        summary = "; ".join(f"{c.name} ({c.detail})" for c in failures)
        raise AssertionError(f"invariant violations: {summary}")
