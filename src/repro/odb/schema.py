"""ODB database sizing and segment layout.

Section 3.1 fixes the physical shape: a warehouse is about 100 MB
including tables and indices; each warehouse has ten districts of three
thousand customers; two 25 GB log files are shared by all warehouses.
The per-warehouse 100 MB is apportioned across table segments with
TPC-C-like proportions (stock dominates), plus one global segment for
the item catalog, which all warehouses share.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.db.blocks import BlockSpace, Segment

WAREHOUSE_BYTES = 100 * 1024 * 1024
DISTRICTS_PER_WAREHOUSE = 10
CUSTOMERS_PER_DISTRICT = 3000
LOG_FILE_BYTES = 25 * 1024**3
LOG_FILE_COUNT = 2
ITEM_CATALOG_BYTES = 8 * 1024 * 1024

#: Fraction of each warehouse's bytes per table segment (indices folded
#: into their tables).  STOCK carries 100k rows * ~300 B and dominates.
_WAREHOUSE_SPLIT = {
    "stock": 0.40,
    "customer": 0.24,
    "orders": 0.12,
    "order_line": 0.14,
    "history": 0.06,
    "new_order": 0.02,
}
#: Segments so small they get a single unit regardless of unit size:
#: the warehouse row and the ten district rows.
_SINGLE_UNIT_SEGMENTS = ("warehouse", "district")


def odb_segments(unit_bytes: int = 64 * 1024) -> list[Segment]:
    """The ODB segment list at a given block-unit resolution."""
    if unit_bytes <= 0:
        raise ValueError("unit_bytes must be positive")
    segments = [Segment("item", max(1, ITEM_CATALOG_BYTES // unit_bytes),
                        per_warehouse=False)]
    for name in _SINGLE_UNIT_SEGMENTS:
        segments.append(Segment(name, 1))
    budget = WAREHOUSE_BYTES - len(_SINGLE_UNIT_SEGMENTS) * unit_bytes
    for name, fraction in _WAREHOUSE_SPLIT.items():
        units = max(1, int(budget * fraction) // unit_bytes)
        segments.append(Segment(name, units))
    return segments


@dataclass(frozen=True)
class OdbSchema:
    """A sized ODB database: block space plus logical row counts."""

    warehouses: int
    unit_bytes: int = 64 * 1024

    def __post_init__(self) -> None:
        if self.warehouses <= 0:
            raise ValueError("warehouses must be positive")

    def build_block_space(self) -> BlockSpace:
        """The block space sized for this schema."""
        return BlockSpace(self.warehouses, odb_segments(self.unit_bytes),
                          self.unit_bytes)

    @property
    def districts(self) -> int:
        """District count (warehouses x 10, per TPC-C)."""
        return self.warehouses * DISTRICTS_PER_WAREHOUSE

    @property
    def customers(self) -> int:
        """Customer count (districts x 3000, per TPC-C)."""
        return self.districts * CUSTOMERS_PER_DISTRICT

    @property
    def data_bytes(self) -> int:
        """Total table+index bytes (excluding the redo logs)."""
        return (self.warehouses * WAREHOUSE_BYTES) + ITEM_CATALOG_BYTES

    def working_set_units(self) -> int:
        """Block units the workload can touch (the working set scales
        linearly with warehouses — Section 4.1)."""
        return self.build_block_space().total_units
