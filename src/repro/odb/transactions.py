"""The five ODB transaction types.

Each profile lists the block-unit touches a transaction makes (per
segment, with a popularity skew), the hot-row locks it takes (held to
commit), its user-space instruction path length, and its redo volume.
The weighted mix averages to the paper's observations: ~6 KB of redo per
transaction and a user path length that does not depend on W.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from random import Random
from typing import Optional

from repro.db.blocks import BlockSpace
from repro.sim.randomness import zipf_cdf


@dataclass(frozen=True)
class TouchSpec:
    """Block touches against one segment."""

    segment: str
    count: int
    write_prob: float = 0.0
    #: Zipf skew of unit popularity within the segment.
    skew: float = 0.5
    #: Append-mostly segments (orders, history): touches cluster in a
    #: small rolling window rather than spreading over the segment.
    append_hot: bool = False
    #: Always touch this one unit (a hot counter row).  Mutually
    #: exclusive with ``append_hot``; overrides the skew distribution.
    fixed_index: Optional[int] = None

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ValueError("touch count must be positive")
        if not 0.0 <= self.write_prob <= 1.0:
            raise ValueError("write_prob must be in [0, 1]")
        if self.fixed_index is not None:
            if self.fixed_index < 0:
                raise ValueError("fixed_index must be >= 0")
            if self.append_hot:
                raise ValueError("fixed_index and append_hot are exclusive")


@dataclass(frozen=True)
class TransactionProfile:
    """One ODB transaction type."""

    name: str
    weight: float
    user_instructions: float
    touches: tuple[TouchSpec, ...]
    #: Hot-row locks taken at start, held to commit.
    locks_warehouse_row: bool = False
    locks_district_row: bool = False
    redo_bytes: float = 6 * 1024
    #: Districts involved (Delivery processes all ten).
    districts_touched: int = 1

    def __post_init__(self) -> None:
        if self.weight <= 0 or self.user_instructions <= 0:
            raise ValueError("weight and instructions must be positive")
        if not self.touches:
            raise ValueError("a transaction must touch at least one block")


@dataclass(frozen=True)
class TransactionPlan:
    """A concrete transaction instance: what to lock and touch."""

    profile: TransactionProfile
    warehouse: int
    district: int
    lock_keys: tuple[tuple, ...]
    #: (block_id, is_write) in access order.
    touches: tuple[tuple[int, bool], ...]


#: The standard ODB mix (TPC-C-like weights).  User path lengths are
#: per-type calibration constants whose mix-weighted mean lands near the
#: paper's ~1.2M user instructions per transaction (Figure 5).
STANDARD_PROFILES: tuple[TransactionProfile, ...] = (
    TransactionProfile(
        name="new_order",
        weight=0.45,
        user_instructions=1.45e6,
        touches=(
            TouchSpec("district", 1, write_prob=1.0),
            TouchSpec("item", 3, skew=0.8),
            TouchSpec("stock", 9, write_prob=0.9, skew=0.55),
            TouchSpec("customer", 1, skew=0.7),
            TouchSpec("orders", 2, write_prob=1.0, append_hot=True),
            TouchSpec("order_line", 2, write_prob=1.0, append_hot=True),
            TouchSpec("new_order", 1, write_prob=1.0, append_hot=True),
        ),
        locks_district_row=True,
        redo_bytes=7.5 * 1024,
    ),
    TransactionProfile(
        name="payment",
        weight=0.43,
        user_instructions=0.85e6,
        touches=(
            TouchSpec("warehouse", 1, write_prob=1.0),
            TouchSpec("district", 1, write_prob=1.0),
            TouchSpec("customer", 2, write_prob=0.5, skew=0.7),
            TouchSpec("history", 1, write_prob=1.0, append_hot=True),
        ),
        locks_warehouse_row=True,
        locks_district_row=True,
        redo_bytes=4.5 * 1024,
    ),
    TransactionProfile(
        name="order_status",
        weight=0.04,
        user_instructions=0.6e6,
        touches=(
            TouchSpec("customer", 2, skew=0.7),
            TouchSpec("orders", 2, append_hot=True),
            TouchSpec("order_line", 2, append_hot=True),
        ),
        redo_bytes=0.3 * 1024,
    ),
    TransactionProfile(
        name="delivery",
        weight=0.04,
        user_instructions=2.4e6,
        touches=(
            TouchSpec("new_order", 2, write_prob=1.0, append_hot=True),
            TouchSpec("orders", 6, write_prob=1.0, append_hot=True),
            TouchSpec("order_line", 4, write_prob=0.8, append_hot=True),
            TouchSpec("customer", 6, write_prob=1.0, skew=0.55),
        ),
        districts_touched=10,
        redo_bytes=9.0 * 1024,
    ),
    TransactionProfile(
        name="stock_level",
        weight=0.04,
        user_instructions=1.5e6,
        touches=(
            TouchSpec("district", 1),
            TouchSpec("order_line", 4, append_hot=True),
            TouchSpec("stock", 12, skew=0.55),
        ),
        redo_bytes=0.3 * 1024,
    ),
)


def mean_user_instructions(
        profiles: tuple[TransactionProfile, ...] = STANDARD_PROFILES) -> float:
    """Mix-weighted mean user path length."""
    total_weight = sum(p.weight for p in profiles)
    return sum(p.weight * p.user_instructions for p in profiles) / total_weight


def mean_redo_bytes(
        profiles: tuple[TransactionProfile, ...] = STANDARD_PROFILES) -> float:
    """Mix-weighted mean redo volume (the paper's ~6 KB)."""
    total_weight = sum(p.weight for p in profiles)
    return sum(p.weight * p.redo_bytes for p in profiles) / total_weight


def abort_weight(profile: TransactionProfile) -> float:
    """Relative transient-abort likelihood of a transaction type.

    Fault injection (:class:`repro.faults.TransientAborts`) scales its
    base probability by this: transactions with a larger write and lock
    footprint are the plausible deadlock victims and transient-error
    targets, while read-only types (order_status, stock_level) are
    nearly immune.  Normalized so the mix-weighted mean is 1.0 — a base
    probability of ``p`` still aborts ``p`` of all transactions.
    """
    raw = _raw_abort_weight(profile)
    total_weight = sum(p.weight for p in STANDARD_PROFILES)
    mean_raw = sum(p.weight * _raw_abort_weight(p)
                   for p in STANDARD_PROFILES) / total_weight
    return raw / mean_raw


def _raw_abort_weight(profile: TransactionProfile) -> float:
    writes = sum(spec.count * spec.write_prob for spec in profile.touches)
    locks = (int(profile.locks_warehouse_row)
             + int(profile.locks_district_row))
    return 0.1 + writes + 2.0 * locks


class _SegmentSampler:
    """Cached Zipf CDFs per (segment, skew) for block picking.

    ``pick`` runs once per planned touch — hundreds of thousands of
    times per configuration — so everything derivable from the spec
    alone (the CDF, the segment's unit count, the block-id base and
    stride) is resolved once into a per-spec plan and the hot call
    reduces to one ``rng.random()`` draw, a bisect, and one add chain.
    The draw order is identical to the direct formulation: exactly one
    uniform sample per touch.
    """

    def __init__(self, space: BlockSpace):
        self.space = space
        self._cdfs: dict[tuple[str, float], list[float]] = {}
        #: spec -> (cdf, modulus-or-0, per-warehouse stride-or-0, offset).
        self._plans: dict[TouchSpec, tuple] = {}

    def _plan(self, spec: TouchSpec) -> tuple:
        segment = self.space.segment(spec.segment)
        if spec.fixed_index is not None:
            # A pinned unit: the CDF degenerates to one bucket so the
            # hot call still consumes exactly one uniform draw (keeping
            # the RNG stream aligned with distribution changes) and the
            # chosen index folds into the offset.
            cdf = [1.0]
            modulus = 0
            space = self.space
            if segment.per_warehouse:
                stride = space.units_per_warehouse
                offset = space.global_units + space._wh_offsets[spec.segment]
            else:
                stride = 0
                offset = space._global_offsets[spec.segment]
            plan = (cdf, modulus, stride,
                    offset + spec.fixed_index % segment.units)
            self._plans[spec] = plan
            return plan
        if spec.append_hot:
            # A rolling append window: the hottest ~2% of the segment
            # (at least 4 units), strongly skewed.
            window = max(4, segment.units // 50)
            key = (spec.segment, -1.0)
            cdf = self._cdfs.get(key)
            if cdf is None:
                cdf = zipf_cdf(window, 1.2)
                self._cdfs[key] = cdf
            modulus = segment.units
        else:
            key = (spec.segment, spec.skew)
            cdf = self._cdfs.get(key)
            if cdf is None:
                cdf = zipf_cdf(segment.units, spec.skew)
                self._cdfs[key] = cdf
            modulus = 0
        space = self.space
        if segment.per_warehouse:
            stride = space.units_per_warehouse
            offset = space.global_units + space._wh_offsets[spec.segment]
        else:
            stride = 0
            offset = space._global_offsets[spec.segment]
        plan = (cdf, modulus, stride, offset)
        self._plans[spec] = plan
        return plan

    def pick(self, rng: Random, spec: TouchSpec, warehouse: int) -> int:
        plan = self._plans.get(spec)
        if plan is None:
            plan = self._plan(spec)
        cdf, modulus, stride, offset = plan
        index = bisect_left(cdf, rng.random())
        if modulus:
            index %= modulus
        return offset + stride * warehouse + index


def plan_transaction(rng: Random, profile: TransactionProfile,
                     sampler: _SegmentSampler, warehouses: int,
                     remote_prob: float = 0.10) -> TransactionPlan:
    """Instantiate a transaction: pick warehouse, district, blocks, locks.

    ``remote_prob`` is the chance any given touch goes to a remote
    warehouse (TPC-C's remote order lines / customer payments).
    """
    space = sampler.space
    # The randrange draws are inlined as CPython's
    # Random._randbelow_with_getrandbits loop (k = n.bit_length(),
    # redraw while >= n): same getrandbits sequence, so the stream stays
    # pinned, minus two interpreter frames per draw.
    getrandbits = rng.getrandbits
    wh_bits = warehouses.bit_length()
    warehouse = getrandbits(wh_bits)
    while warehouse >= warehouses:
        warehouse = getrandbits(wh_bits)
    district = getrandbits(4)
    while district >= 10:
        district = getrandbits(4)
    lock_keys: list[tuple] = []
    if profile.locks_warehouse_row:
        lock_keys.append(("wh", warehouse))
    if profile.locks_district_row:
        # Block-granular: all ten district rows share one block unit, so
        # updates contend per warehouse (Oracle buffer-level contention),
        # which is what makes tiny databases switch-heavy.
        lock_keys.append(("dist", warehouse))
    # Hot loop: the sampler's per-spec plan is resolved once per spec,
    # not once per touch, and the pick is inlined (one uniform draw, a
    # bisect, an add chain) — draw order identical to sampler.pick.
    touches: list[tuple[int, bool]] = []
    append = touches.append
    rand = rng.random
    plans = sampler._plans
    multi = warehouses > 1
    for spec in profile.touches:
        plan = plans.get(spec)
        if plan is None:
            plan = sampler._plan(spec)
        cdf, modulus, stride, offset = plan
        write_prob = spec.write_prob
        for _ in range(spec.count):
            target = warehouse
            if multi and rand() < remote_prob:
                target = getrandbits(wh_bits)
                while target >= warehouses:
                    target = getrandbits(wh_bits)
            index = bisect_left(cdf, rand())
            if modulus:
                index %= modulus
            append((offset + stride * target + index, rand() < write_prob))
    return TransactionPlan(
        profile=profile,
        warehouse=warehouse,
        district=district,
        lock_keys=tuple(lock_keys),
        touches=tuple(touches),
    )
