"""Analytic block-unit popularity and steady-state cache fill.

The paper warms the database for twenty minutes (on the order of a
million transactions) before measuring, so the buffer cache it measures
is *full* and in popularity steady state.  Replaying that many
transactions through the DES would dominate runtime, so this module
computes the reference-rate of every block unit directly from the
transaction mix and installs the most popular units up to capacity —
the LRU steady state for an IRM-style (independent reference model)
access pattern.

Warehouses are symmetric: a unit's popularity depends only on its
segment and within-segment index, so the ranking is computed once per
distinct unit and multiplied across warehouses.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random

from repro.db.blocks import BlockSpace
from repro.db.buffer_cache import BufferCache
from repro.odb.transactions import TransactionProfile, STANDARD_PROFILES
from repro.sim.randomness import zipf_cdf


@dataclass(frozen=True)
class UnitPopularity:
    """Touch rate (per transaction) of one distinct unit."""

    segment: str
    index: int
    rate: float
    per_warehouse: bool


def _zipf_weights(n: int, skew: float) -> list[float]:
    cdf = zipf_cdf(n, skew)
    weights = [cdf[0]]
    for previous, current in zip(cdf, cdf[1:]):
        weights.append(current - previous)
    return weights


def unit_popularities(
        space: BlockSpace,
        profiles: tuple[TransactionProfile, ...] = STANDARD_PROFILES,
) -> list[UnitPopularity]:
    """Per-distinct-unit touch rates, descending.

    Rates for per-warehouse units are *per warehouse* (i.e. already
    divided by W, since a uniformly chosen warehouse receives 1/W of the
    segment's traffic).
    """
    total_weight = sum(p.weight for p in profiles)
    rates: dict[tuple[str, int], float] = {}
    for profile in profiles:
        share = profile.weight / total_weight
        for spec in profile.touches:
            segment = space.segment(spec.segment)
            touch_rate = share * spec.count
            if spec.fixed_index is not None:
                weights = [1.0]
                indices = [spec.fixed_index % segment.units]
            elif spec.append_hot:
                window = max(4, segment.units // 50)
                weights = _zipf_weights(window, 1.2)
                indices = range(window)
            else:
                weights = _zipf_weights(segment.units, spec.skew)
                indices = range(segment.units)
            if segment.per_warehouse:
                touch_rate /= space.warehouses
            for index, weight in zip(indices, weights):
                key = (spec.segment, index % segment.units)
                rates[key] = rates.get(key, 0.0) + touch_rate * weight
    result = [
        UnitPopularity(segment=name, index=index, rate=rate,
                       per_warehouse=space.segment(name).per_warehouse)
        for (name, index), rate in rates.items()
    ]
    result.sort(key=lambda u: u.rate, reverse=True)
    return result


def segment_write_fractions(
        profiles: tuple[TransactionProfile, ...] = STANDARD_PROFILES,
) -> dict[str, float]:
    """Probability a touch on each segment is a write (mix-weighted)."""
    touch_rate: dict[str, float] = {}
    write_rate: dict[str, float] = {}
    total_weight = sum(p.weight for p in profiles)
    for profile in profiles:
        share = profile.weight / total_weight
        for spec in profile.touches:
            touch_rate[spec.segment] = (touch_rate.get(spec.segment, 0.0)
                                        + share * spec.count)
            write_rate[spec.segment] = (write_rate.get(spec.segment, 0.0)
                                        + share * spec.count * spec.write_prob)
    return {segment: write_rate[segment] / rate
            for segment, rate in touch_rate.items() if rate > 0}


def steady_state_fill(cache: BufferCache, space: BlockSpace,
                      profiles: tuple[TransactionProfile, ...] = STANDARD_PROFILES,
                      rng: Random | None = None) -> int:
    """Install the most popular units up to cache capacity.

    Returns the number of units installed.  Per-warehouse units are
    installed warehouse-by-warehouse (a partially resident popularity
    tier lands on the lowest-numbered warehouses; accesses are uniform
    over warehouses, so the asymmetry averages out).

    Units are installed from least to most popular, so the LRU order
    ends with the hottest units most recently used.  Each unit starts
    dirty with its segment's write fraction — in steady state a unit
    near eviction has been written with that probability, so dirty
    evictions flow at the right rate from the first measured second.
    """
    if rng is None:
        rng = Random(0x5EED)
    write_fractions = segment_write_fractions(profiles)
    selected: list[tuple[str, int, int]] = []  # (segment, index, copies)
    budget = cache.capacity_units
    for unit in unit_popularities(space, profiles):
        if budget <= 0:
            break
        copies = space.warehouses if unit.per_warehouse else 1
        copies = min(copies, budget)
        selected.append((unit.segment, unit.index, copies))
        budget -= copies
    installed = 0
    for segment, index, copies in reversed(selected):
        dirty_prob = write_fractions.get(segment, 0.0)
        for warehouse in range(copies):
            cache.install(space.block_id(segment, warehouse, index),
                          dirty=rng.random() < dirty_prob)
            installed += 1
    cache.reset_stats()
    return installed


def expected_hit_rate(space: BlockSpace, capacity_units: int,
                      profiles: tuple[TransactionProfile, ...] = STANDARD_PROFILES,
                      ) -> float:
    """IRM-predicted buffer hit rate for a given capacity.

    The mass of the popularity distribution covered by the top
    ``capacity_units`` units.  Useful as an analytic cross-check of the
    simulated steady state (they agree up to LRU-vs-IRM error).
    """
    if capacity_units <= 0:
        return 0.0
    populations = unit_popularities(space, profiles)
    total = sum(u.rate * (space.warehouses if u.per_warehouse else 1)
                for u in populations)
    covered = 0.0
    budget = capacity_units
    for unit in populations:
        if budget <= 0:
            break
        copies = space.warehouses if unit.per_warehouse else 1
        take = min(copies, budget)
        covered += unit.rate * take
        budget -= take
    return covered / total if total else 0.0
