"""The ODB workload: an order-entry OLTP benchmark (Section 3.1).

ODB simulates an order-entry business: a collection of warehouses, each
supplying ten sales districts of three thousand customers, against which
clients run five transaction types (entering and delivering orders,
recording payments, order-status and stock-level checks).

- :mod:`~repro.odb.schema` — database sizing: ~100 MB per warehouse
  including indices, a global item catalog, two 25 GB log files.
- :mod:`~repro.odb.transactions` — the five transaction profiles: block
  touches, lock keys, user instruction path lengths.
- :mod:`~repro.odb.mix` — the weighted transaction mix.
- :mod:`~repro.odb.client` — client/server process pairs driving the
  database engine.
- :mod:`~repro.odb.system` — the assembled testbed: one call builds the
  machine, OS, database, and clients, runs warm-up plus a measurement
  window, and returns system-level metrics.

ODB is *not* a compliant TPC-C benchmark (neither was the paper's).
"""

from repro.odb.schema import OdbSchema, odb_segments
from repro.odb.transactions import (
    TouchSpec,
    TransactionPlan,
    TransactionProfile,
    STANDARD_PROFILES,
    plan_transaction,
)
from repro.odb.mix import TransactionMix
from repro.odb.system import OdbConfig, OdbSystem, SystemMetrics

__all__ = [
    "OdbSchema",
    "odb_segments",
    "TouchSpec",
    "TransactionPlan",
    "TransactionProfile",
    "STANDARD_PROFILES",
    "plan_transaction",
    "TransactionMix",
    "OdbConfig",
    "OdbSystem",
    "SystemMetrics",
]
