"""Weighted transaction mix."""

from __future__ import annotations

from random import Random

from repro.odb.transactions import STANDARD_PROFILES, TransactionProfile


class TransactionMix:
    """Samples transaction types by weight."""

    def __init__(self, profiles: tuple[TransactionProfile, ...] = STANDARD_PROFILES):
        if not profiles:
            raise ValueError("mix needs at least one profile")
        self.profiles = profiles
        total = sum(p.weight for p in profiles)
        if total <= 0:
            raise ValueError("mix weights must sum to a positive value")
        self._cdf: list[float] = []
        running = 0.0
        for profile in profiles:
            running += profile.weight / total
            self._cdf.append(running)
        self._cdf[-1] = 1.0

    def pick(self, rng: Random) -> TransactionProfile:
        """Draw one transaction type from the mix."""
        u = rng.random()
        for probability, profile in zip(self._cdf, self.profiles):
            if u <= probability:
                return profile
        return self.profiles[-1]

    def by_name(self, name: str) -> TransactionProfile:
        """The mix entry for ``name``; raises ``KeyError`` if unknown."""
        for profile in self.profiles:
            if profile.name == name:
                return profile
        known = ", ".join(p.name for p in self.profiles)
        raise KeyError(f"unknown transaction {name!r}; known: {known}")

    def share_of(self, name: str) -> float:
        """Normalized weight of one transaction type."""
        total = sum(p.weight for p in self.profiles)
        return self.by_name(name).weight / total
