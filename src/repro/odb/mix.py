"""Weighted transaction mix."""

from __future__ import annotations

from bisect import bisect_right
from random import Random
from typing import Callable

from repro.odb.transactions import STANDARD_PROFILES, TransactionProfile


class TransactionMix:
    """Samples transaction types by weight."""

    def __init__(self, profiles: tuple[TransactionProfile, ...] = STANDARD_PROFILES):
        if not profiles:
            raise ValueError("mix needs at least one profile")
        self.profiles = profiles
        total = sum(p.weight for p in profiles)
        if total <= 0:
            raise ValueError("mix weights must sum to a positive value")
        self._cdf: list[float] = []
        running = 0.0
        for profile in profiles:
            running += profile.weight / total
            self._cdf.append(running)
        self._cdf[-1] = 1.0

    def pick(self, rng: Random) -> TransactionProfile:
        """Draw one transaction type from the mix."""
        u = rng.random()
        for probability, profile in zip(self._cdf, self.profiles):
            if u <= probability:
                return profile
        return self.profiles[-1]

    def by_name(self, name: str) -> TransactionProfile:
        """The mix entry for ``name``; raises ``KeyError`` if unknown."""
        for profile in self.profiles:
            if profile.name == name:
                return profile
        known = ", ".join(p.name for p in self.profiles)
        raise KeyError(f"unknown transaction {name!r}; known: {known}")

    def share_of(self, name: str) -> float:
        """Normalized weight of one transaction type."""
        total = sum(p.weight for p in self.profiles)
        return self.by_name(name).weight / total


class PhasedTransactionMix(TransactionMix):
    """A mix whose weights cycle through phases over simulated time.

    ``schedule`` is ``(duration_s, profiles)`` per phase; the phases
    repeat in order for the whole run (the paper's Figures 12-14
    new-order / payment waves).  ``clock`` reads the simulation time —
    the engine's ``now`` — at each pick.  ``profiles`` (the base
    attribute) holds the stationary duration-weighted blend, which is
    what popularity/prewarm analysis should see; ``pick`` delegates to
    the active phase's own weighted mix, costing the same single
    uniform draw as the stationary case.
    """

    def __init__(self, profiles: tuple[TransactionProfile, ...],
                 schedule: tuple[
                     tuple[float, tuple[TransactionProfile, ...]], ...],
                 clock: Callable[[], float]):
        super().__init__(profiles)
        if not schedule:
            raise ValueError("phased mix needs at least one phase")
        self._phase_mixes = [TransactionMix(phase_profiles)
                             for _, phase_profiles in schedule]
        self._ends: list[float] = []
        elapsed = 0.0
        for duration_s, _ in schedule:
            if duration_s <= 0:
                raise ValueError("phase durations must be positive")
            elapsed += duration_s
            self._ends.append(elapsed)
        self.cycle_s = elapsed
        self._clock = clock

    def active_phase(self) -> int:
        """Index of the phase the clock is currently inside."""
        position = self._clock() % self.cycle_s
        index = bisect_right(self._ends, position)
        return min(index, len(self._phase_mixes) - 1)

    def pick(self, rng: Random) -> TransactionProfile:
        """Draw one transaction type from the active phase's mix."""
        return self._phase_mixes[self.active_phase()].pick(rng)
