"""The assembled ODB testbed.

One :class:`OdbSystem` is a complete simulated machine-plus-database: a
DES engine, ``P`` scheduled CPUs, the disk array, the SGA buffer cache,
the lock table, the redo log with its log-writer process, the database
writer, and ``C`` client processes.  ``run()`` executes a warm-up phase
followed by a measurement window and returns :class:`SystemMetrics` —
the system-level quantities of Section 4 (TPS, IPX and its user/OS
split, disk I/O and context switches per transaction, utilization).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from heapq import heappop
from typing import Optional

from repro.db.blocks import BlockSpace
from repro.db.buffer_cache import BufferCache
from repro.db.dbwriter import DbWriter
from repro.db.engine import DatabaseEngine, TransactionStats
from repro.db.locks import LockTable
from repro.db.redo import RedoLog, log_writer_process
from repro.faults import DiskFaultModel, FaultPlan, lock_storm_process
from repro.hw.machine import MachineConfig, XEON_MP_QUAD
from repro.odb.client import client_process
from repro.odb.mix import TransactionMix
from repro.odb.schema import OdbSchema
from repro.odb.transactions import _SegmentSampler, TransactionProfile
from repro.obs import metrics as _metrics
from repro.obs import tracing as _tracing
from repro.osmodel.disks import DiskArray
from repro.osmodel.kernelcost import KernelCosts
from repro.osmodel.scheduler import Scheduler
from repro.sim import Engine
from repro.sim.engine import publish_scheduler_metrics
from repro.sim.randomness import RandomStreams
from repro.sim.scheduler import HeapScheduler
from repro.sim.stats import Counter

#: A real database block: a buffer-cache miss is one physical read of
#: this size regardless of the block-unit resolution (DESIGN.md §6).
PHYSICAL_BLOCK_BYTES = 8 * 1024


@dataclass(frozen=True)
class OdbConfig:
    """One OLTP configuration point: (W, C, P) plus the machine."""

    warehouses: int
    clients: int
    processors: int
    machine: MachineConfig = XEON_MP_QUAD
    unit_bytes: int = 64 * 1024
    seed: int = 42
    #: Share of the SGA devoted to the database buffer cache (the paper's
    #: setup: 2.8 GB of the 3 GB SGA).
    buffer_cache_fraction: float = 2.8 / 3.0
    remote_touch_prob: float = 0.10
    #: Initial CPI guesses; the experiment runner refines them through
    #: fixed-point iteration with the microarchitecture model.
    user_cpi: float = 2.5
    os_cpi: float = 2.0
    #: Optional fault-injection plan (repro.faults); None = healthy run.
    #: Strictly opt-in: with no plan the simulation is bit-identical to a
    #: build without the fault layer.
    faults: Optional[FaultPlan] = None
    #: Optional compiled workload (repro.workload.CompiledWorkload,
    #: duck-typed to keep odb import-independent of the DSL layer).
    #: None = the built-in standard ODB mix; a compiled ``odb-standard``
    #: spec is value-identical and therefore bit-identical at run time.
    workload: Optional[object] = None

    def __post_init__(self) -> None:
        if self.warehouses <= 0 or self.clients <= 0:
            raise ValueError("warehouses and clients must be positive")
        if not 1 <= self.processors <= self.machine.max_processors:
            raise ValueError(
                f"processors must be 1..{self.machine.max_processors}")
        if not 0.0 < self.buffer_cache_fraction <= 1.0:
            raise ValueError("buffer_cache_fraction must be in (0, 1]")
        if self.user_cpi <= 0 or self.os_cpi <= 0:
            raise ValueError("CPI values must be positive")

    def with_cpi(self, user_cpi: float, os_cpi: float) -> "OdbConfig":
        """Copy of the config with replaced user/OS CPI values."""
        import dataclasses

        return dataclasses.replace(self, user_cpi=user_cpi, os_cpi=os_cpi)


@dataclass(frozen=True)
class SystemMetrics:
    """Measured system-level behavior over one measurement window."""

    warehouses: int
    clients: int
    processors: int
    elapsed_s: float
    transactions: int
    tps: float
    cpu_utilization: float
    user_busy_share: float
    os_busy_share: float
    user_ipx: float
    os_ipx: float
    reads_per_txn: float
    data_writes_per_txn: float
    log_flushes_per_txn: float
    log_bytes_per_txn: float
    context_switches_per_txn: float
    lock_waits_per_txn: float
    buffer_hit_rate: float
    disk_utilization: float
    max_disk_utilization: float
    read_latency_s: float
    commit_wait_s: float
    group_commit_size: float
    #: Fault-injection resilience counters (0.0 on a healthy run): how
    #: many transient aborts and client retries happened per *committed*
    #: transaction.
    aborts_per_txn: float = 0.0
    retries_per_txn: float = 0.0

    @property
    def ipx(self) -> float:
        """Total instructions per transaction (Figure 4)."""
        return self.user_ipx + self.os_ipx

    @property
    def io_read_kb_per_txn(self) -> float:
        """Read traffic per transaction in KB (Figure 7's units)."""
        return self.reads_per_txn * PHYSICAL_BLOCK_BYTES / 1024.0

    @property
    def io_write_kb_per_txn(self) -> float:
        """Write traffic per transaction in KB: dirty writebacks plus redo."""
        return (self.data_writes_per_txn * PHYSICAL_BLOCK_BYTES / 1024.0
                + self.log_bytes_per_txn / 1024.0)

    @property
    def io_total_kb_per_txn(self) -> float:
        """Read + write KB per transaction."""
        return self.io_read_kb_per_txn + self.io_write_kb_per_txn


class OdbSystem:
    """A fully assembled simulated testbed for one configuration."""

    def __init__(self, config: OdbConfig):
        self.config = config
        machine = config.machine
        self.engine = Engine()
        self.streams = RandomStreams(config.seed)
        self.scheduler = Scheduler(self.engine, config.processors,
                                   machine.frequency_hz, KernelCosts())
        self.scheduler.user_spi = config.user_cpi / machine.frequency_hz
        self.scheduler.os_spi = config.os_cpi / machine.frequency_hz
        self.disks = DiskArray(self.engine, machine.disks, self.streams)
        schema = OdbSchema(config.warehouses, config.unit_bytes)
        self.schema = schema
        self.space: BlockSpace = schema.build_block_space()
        self.workload = config.workload
        self.remote_touch_prob = config.remote_touch_prob
        if self.workload is not None:
            custom_space = self.workload.build_block_space(
                config.warehouses, config.unit_bytes)
            if custom_space is not None:
                self.space = custom_space
            if self.workload.remote_touch_prob is not None:
                self.remote_touch_prob = self.workload.remote_touch_prob
        capacity_units = max(
            1, int(machine.sga_bytes * config.buffer_cache_fraction)
            // config.unit_bytes)
        self.buffer_cache = BufferCache(capacity_units)
        self.lock_table = LockTable(self.engine)
        self.redo = RedoLog(self.engine)
        self.dbwriter = DbWriter(self.engine, self.disks, self.scheduler)
        self.db = DatabaseEngine(self.engine, self.scheduler, self.disks,
                                 self.buffer_cache, self.lock_table,
                                 self.redo, self.dbwriter)
        if self.workload is not None:
            # The phase clock reads simulated time lazily, so a schedule
            # follows the engine without the mix holding engine state.
            self.mix = self.workload.build_mix(clock=lambda: self.engine.now)
        else:
            self.mix = TransactionMix()
        self.sampler = _SegmentSampler(self.space)
        self._txn_log: list[tuple[str, TransactionStats]] = []
        # Fault injection (strictly opt-in; see repro.faults).  Fault
        # randomness derives from the plan's own seed so the workload
        # streams stay untouched.
        self.faults = config.faults
        self.fault_streams = None
        self.retries = Counter("txn-retries")
        self.abandoned = Counter("txn-abandoned")
        log_stalls: tuple = ()
        if self.faults is not None:
            self.fault_streams = RandomStreams(self.faults.seed)
            if self.faults.disks:
                self.disks.fault_model = DiskFaultModel(
                    self.faults, self.disks.data_disk_count)
            log_stalls = self.faults.log_stalls
            for index, storm in enumerate(self.faults.lock_storms):
                self.engine.process(lock_storm_process(
                    self.engine, self.lock_table, storm, config.warehouses,
                    self.fault_streams.stream(f"storm-{index}"),
                    storm_index=index))
        # Background processes.
        self.engine.process(log_writer_process(
            self.engine, self.redo, self.disks, self.scheduler,
            stalls=log_stalls))
        self.engine.process(self.dbwriter.process())
        self.engine.process(self.dbwriter.checkpoint_process(self.buffer_cache))
        for client_id in range(config.clients):
            self.engine.process(client_process(self, client_id))

    # -- hooks ----------------------------------------------------------------

    def note_transaction(self, profile: TransactionProfile,
                         stats: TransactionStats) -> None:
        """Called by clients at commit (kept small: counts live in parts)."""
        self._txn_log.append((profile.name, stats))
        if len(self._txn_log) > 50_000:
            del self._txn_log[:25_000]

    # -- warm-up --------------------------------------------------------------

    def prewarm_buffer_cache(self, plans: int = 1000) -> None:
        """Populate the buffer cache with its steady-state working set.

        Stands in for the paper's 20-minute warm-up: an analytic
        popularity fill loads the cache to capacity with the hottest
        units (see :mod:`repro.odb.popularity`), then a short plan replay
        freshens LRU recency with realistic access interleaving.
        """
        from repro.odb.popularity import steady_state_fill
        from repro.odb.transactions import plan_transaction

        steady_state_fill(self.buffer_cache, self.space, self.mix.profiles)
        rng = self.streams.stream("prewarm")
        # Hot loop (thousands of plan replays before the DES even
        # starts): alias the per-plan callees once.
        pick_profile = self.mix.pick
        cache = self.buffer_cache
        lookup = cache.lookup
        touch_write = cache.touch_write
        install = cache.install
        sampler = self.sampler
        warehouses = self.config.warehouses
        remote_prob = self.remote_touch_prob
        for _ in range(plans):
            plan = plan_transaction(rng, pick_profile(rng), sampler,
                                    warehouses, remote_prob)
            for block_id, write in plan.touches:
                hit = touch_write(block_id) if write else lookup(block_id)
                if not hit:
                    install(block_id, dirty=write)
        cache.reset_stats()

    # -- measurement -----------------------------------------------------------

    def _snapshot(self) -> dict[str, float]:
        snap = self.scheduler.snapshot()
        snap.update({
            "time": self.engine.now,
            "transactions": self.db.transactions.snapshot(),
            "aborted": self.db.aborted.snapshot(),
            "retries": self.retries.snapshot(),
            "physical_reads": self.db.physical_reads.snapshot(),
            "logical_reads": self.db.logical_reads.snapshot(),
            "lock_wait_switches": self.db.lock_wait_switches.snapshot(),
            "data_writes": self.disks.writes.snapshot(),
            "log_writes": self.disks.log_writes.snapshot(),
            "log_bytes": self.redo.bytes_written.snapshot(),
            "log_flushes": self.redo.flushes.snapshot(),
            "buffer_hits": float(self.buffer_cache.hits),
            "buffer_misses": float(self.buffer_cache.misses),
            "disk_busy": sum(d.busy_time() for d in self.disks._data_disks),
            "disk_busy_max": max(d.busy_time() for d in self.disks._data_disks),
        })
        return snap

    def _run_until_transactions(self, target: int, time_limit_s: float) -> None:
        # The commit count must be re-checked before every event (an
        # overshoot would shift the measurement snapshot), so the loop
        # cannot batch.  The heap scheduler gets an inlined heappop loop
        # (this is the DES hot loop; a method call per event was a
        # measurable cost); other schedulers go through their pop_due
        # method, which batches slot pours internally.
        engine = self.engine
        sched = engine._sched
        counter = self.db.transactions
        deadline = engine.now + time_limit_s
        if type(sched) is HeapScheduler:
            heap = sched._heap
            pop = heappop
            while counter.count < target and heap and heap[0][0] <= deadline:
                when, _priority, _seq, event = pop(heap)
                if event._dead:
                    sched._dead -= 1
                    sched.skipped_dead += 1
                    continue
                engine._now = when
                event._process()
            return
        pop_due = sched.pop_due
        while counter.count < target:
            entry = pop_due(deadline)
            if entry is None:
                break
            engine._now = entry[0]
            entry[3]._process()

    def run(self, warmup_txns: int = 500, measure_txns: int = 2000,
            prewarm_plans: int = 4000,
            time_limit_s: float = 3600.0) -> SystemMetrics:
        """Warm up, measure, and summarize.

        ``time_limit_s`` bounds simulated time so an I/O-bound
        configuration that cannot reach the transaction target still
        terminates (its low TPS is the result, not an error).
        """
        if prewarm_plans > 0 and self.db.transactions.count == 0:
            with _tracing.span("des-prewarm"):
                self.prewarm_buffer_cache(prewarm_plans)
        with _tracing.span("des-warmup") as span:
            self._run_until_transactions(warmup_txns, time_limit_s)
            if span is not None:
                span.count("transactions", self.db.transactions.count)
        before = self._snapshot()
        with _tracing.span("des-measure") as span:
            self._run_until_transactions(warmup_txns + measure_txns,
                                         time_limit_s)
            if span is not None:
                span.count("transactions",
                           self.db.transactions.count - warmup_txns)
                span.count("sim_time_s", self.engine.now)
        after = self._snapshot()
        if _metrics.ACTIVE:
            # DES totals at the phase boundary (the measurement loop
            # itself stays untouched): what the engine retired and how
            # much simulated time it covered, plus the scheduler's
            # cumulative queue counters (once per engine lifetime).
            _metrics.inc("engine.des_runs")
            _metrics.inc("engine.transactions",
                         after["transactions"] - before["transactions"])
            _metrics.inc("engine.sim_time_s", self.engine.now)
            publish_scheduler_metrics(self.engine.scheduler)
        return self._metrics(before, after)

    def _metrics(self, before: dict[str, float],
                 after: dict[str, float]) -> SystemMetrics:
        elapsed = after["time"] - before["time"]
        txns = after["transactions"] - before["transactions"]
        if elapsed <= 0 or txns <= 0:
            raise RuntimeError(
                "measurement window is empty; raise time_limit_s or lower "
                "the transaction targets")

        def per_txn(key: str) -> float:
            return (after[key] - before[key]) / txns

        user_busy = after["user_busy_s"] - before["user_busy_s"]
        os_busy = after["os_busy_s"] - before["os_busy_s"]
        busy = user_busy + os_busy
        cpu_busy = after["cpu_busy_time"] - before["cpu_busy_time"]
        hits = after["buffer_hits"] - before["buffer_hits"]
        misses = after["buffer_misses"] - before["buffer_misses"]
        lookups = hits + misses
        return SystemMetrics(
            warehouses=self.config.warehouses,
            clients=self.config.clients,
            processors=self.config.processors,
            elapsed_s=elapsed,
            transactions=int(txns),
            tps=txns / elapsed,
            cpu_utilization=cpu_busy / (self.config.processors * elapsed),
            user_busy_share=user_busy / busy if busy else 0.0,
            os_busy_share=os_busy / busy if busy else 0.0,
            user_ipx=per_txn("user_instructions"),
            os_ipx=per_txn("os_instructions"),
            reads_per_txn=per_txn("physical_reads"),
            data_writes_per_txn=per_txn("data_writes"),
            log_flushes_per_txn=per_txn("log_flushes"),
            log_bytes_per_txn=per_txn("log_bytes"),
            context_switches_per_txn=per_txn("context_switches"),
            lock_waits_per_txn=per_txn("lock_wait_switches"),
            buffer_hit_rate=hits / lookups if lookups else 0.0,
            disk_utilization=(after["disk_busy"] - before["disk_busy"])
            / (self.disks.data_disk_count * elapsed),
            max_disk_utilization=(after["disk_busy_max"] - before["disk_busy_max"])
            / elapsed,
            read_latency_s=self.disks.read_latency.mean,
            commit_wait_s=self.redo.commit_wait.mean,
            group_commit_size=self.redo.group_size.mean,
            aborts_per_txn=per_txn("aborted"),
            retries_per_txn=per_txn("retries"),
        )
