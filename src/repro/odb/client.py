"""Client / server process pairs.

In ODB a user process submits transactions and an Oracle server process
executes them (Figure 1).  At the fidelity of this model the pair
collapses into one simulation process per client that plans a
transaction, acquires a CPU, and walks the plan through the database
engine: lock, touch blocks (blocking on buffer misses), commit.

Clients run with zero think time — the paper controls CPU utilization
purely through the number of concurrent clients (Section 3.2.1).

Under fault injection (:mod:`repro.faults`) a transaction can abort
transiently at commit; the client rolls back, backs off with capped
exponential delay per the plan's :class:`~repro.faults.RetryPolicy`,
and re-executes the *same* plan.  Abort decisions draw from a fault
stream derived from the plan's seed, so the workload streams (mix,
block selection) are untouched and a faulted run stays comparable to
the healthy run over the same transaction sequence.
"""

from __future__ import annotations

from repro.db.engine import TransactionStats
from repro.odb.transactions import abort_weight, plan_transaction


def client_process(system, client_id: int):
    """The per-client main loop; runs forever (the system bounds time)."""
    scheduler = system.scheduler
    db = system.db
    rng = system.streams.stream(f"client-{client_id}")
    faults = system.faults
    abort_rng = None
    if faults is not None and faults.aborts is not None \
            and faults.aborts.probability > 0:
        abort_rng = system.fault_streams.stream(f"abort-{client_id}")
    sequence = 0
    while True:
        profile = system.mix.pick(rng)
        plan = plan_transaction(rng, profile, system.sampler,
                                system.config.warehouses,
                                remote_prob=system.remote_touch_prob)
        attempt = 0
        while True:
            attempt += 1
            owner = (client_id, sequence)
            sequence += 1
            stats = TransactionStats()
            claim = scheduler.acquire()
            yield claim
            # Hot-row locks first, in plan order (fixed order: no deadlock).
            for key in plan.lock_keys:
                claim = yield from db.lock(claim, owner, key, stats)
            # User work interleaved with block touches.
            chunk = profile.user_instructions / (len(plan.touches) + 1)
            for block_id, write in plan.touches:
                yield from scheduler.execute_user(chunk)
                claim = yield from db.access_block(claim, block_id, write,
                                                   stats)
            yield from scheduler.execute_user(chunk)
            # Per-transaction kernel baseline (IPC with the client, timers).
            yield from scheduler.execute_os(scheduler.costs.base_per_txn)
            if abort_rng is not None and (
                    abort_rng.random()
                    < faults.aborts.probability * abort_weight(profile)):
                # Transient abort: roll back (locks drop, work done so far
                # stays spent), give up the CPU, back off, and retry.
                db.abort(owner)
                yield from scheduler.block(claim)
                if attempt >= faults.retry.max_attempts:
                    system.abandoned.add()
                    break
                system.retries.add()
                backoff = faults.retry.backoff_s(attempt)
                if backoff > 0:
                    yield system.engine.timeout(backoff)
                continue
            claim = yield from db.commit(claim, owner, stats,
                                         redo_bytes=profile.redo_bytes)
            scheduler.release(claim)
            system.note_transaction(profile, stats)
            break
