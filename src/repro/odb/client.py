"""Client / server process pairs.

In ODB a user process submits transactions and an Oracle server process
executes them (Figure 1).  At the fidelity of this model the pair
collapses into one simulation process per client that plans a
transaction, acquires a CPU, and walks the plan through the database
engine: lock, touch blocks (blocking on buffer misses), commit.

Clients run with zero think time — the paper controls CPU utilization
purely through the number of concurrent clients (Section 3.2.1).
"""

from __future__ import annotations

from repro.db.engine import TransactionStats
from repro.odb.transactions import plan_transaction


def client_process(system, client_id: int):
    """The per-client main loop; runs forever (the system bounds time)."""
    scheduler = system.scheduler
    db = system.db
    rng = system.streams.stream(f"client-{client_id}")
    sequence = 0
    while True:
        profile = system.mix.pick(rng)
        plan = plan_transaction(rng, profile, system.sampler,
                                system.config.warehouses,
                                remote_prob=system.config.remote_touch_prob)
        owner = (client_id, sequence)
        sequence += 1
        stats = TransactionStats()
        claim = scheduler.acquire()
        yield claim
        # Hot-row locks first, in plan order (fixed order: no deadlock).
        for key in plan.lock_keys:
            claim = yield from db.lock(claim, owner, key, stats)
        # User work interleaved with block touches.
        chunk = profile.user_instructions / (len(plan.touches) + 1)
        for block_id, write in plan.touches:
            yield from scheduler.execute_user(chunk)
            claim = yield from db.access_block(claim, block_id, write, stats)
        yield from scheduler.execute_user(chunk)
        # Per-transaction kernel baseline (IPC with the client, timers).
        yield from scheduler.execute_os(scheduler.costs.base_per_txn)
        claim = yield from db.commit(claim, owner, stats,
                                     redo_bytes=profile.redo_bytes)
        scheduler.release(claim)
        system.note_transaction(profile, stats)
