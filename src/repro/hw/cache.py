"""A set-associative, write-back, LRU cache model.

The model is line-granular and demand-filled: every access either hits a
resident line (refreshing its recency) or misses, installs the line, and
possibly evicts the least-recently-used line of the set (reporting a
writeback when the victim was dirty).  Each set is a Python dict keyed by
line id; insertion order doubles as LRU order (hits delete + reinsert).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.hw.machine import CacheConfig


@dataclass(frozen=True)
class AccessResult:
    """Outcome of a single cache access."""

    hit: bool
    #: Line id evicted to make room, or None when a way was free or on hit.
    evicted_line: Optional[int] = None
    #: True when the evicted line was dirty (a writeback occurred).
    writeback: bool = False


# Shared immutable results for the two allocation-free outcomes.  A
# cache access happens millions of times per configuration run, and a
# frozen-dataclass construction per access dominated the model's cost;
# only a miss that actually evicts needs a fresh object.
_HIT = AccessResult(hit=True)
_MISS_NO_VICTIM = AccessResult(hit=False)


class SetAssociativeCache:
    """One cache level.

    Addresses are byte addresses; the cache works internally on line ids
    (``address // line_bytes``).  Statistics counters are plain attributes
    so the EMON layer can snapshot them cheaply.
    """

    def __init__(self, config: CacheConfig):
        self.config = config
        self._num_sets = config.num_sets
        self._ways = config.associativity
        self._line_shift = config.line_bytes.bit_length() - 1
        # One dict per set: {line_id: dirty}; dict order is LRU order.
        self._sets: list[dict[int, bool]] = [dict() for _ in range(self._num_sets)]
        self.accesses = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0
        self.invalidations = 0

    # -- address helpers ----------------------------------------------------

    def line_of(self, address: int) -> int:
        """Line id containing byte ``address``."""
        return address >> self._line_shift

    def _set_of(self, line: int) -> dict[int, bool]:
        return self._sets[line % self._num_sets]

    # -- operations ----------------------------------------------------------

    def access(self, address: int, write: bool = False) -> AccessResult:
        """Reference a byte address; returns hit/miss and victim info."""
        line = address >> self._line_shift
        cache_set = self._sets[line % self._num_sets]
        self.accesses += 1
        dirty = cache_set.pop(line, None)
        if dirty is not None:
            self.hits += 1
            cache_set[line] = dirty or write
            return _HIT
        self.misses += 1
        if len(cache_set) >= self._ways:
            evicted_line = next(iter(cache_set))
            writeback = cache_set.pop(evicted_line)
            self.evictions += 1
            if writeback:
                self.writebacks += 1
            cache_set[line] = write
            return AccessResult(hit=False, evicted_line=evicted_line,
                                writeback=writeback)
        cache_set[line] = write
        return _MISS_NO_VICTIM

    def access_hit(self, address: int, write: bool = False) -> bool:
        """Like :meth:`access` but returns only the hit/miss outcome.

        State evolution and counters are identical to :meth:`access`;
        the victim information is simply not materialized.  This is the
        hot path for levels whose eviction victims the caller ignores
        (TLB translations, trace-cache fills, the L2 in front of an
        inclusive L3).
        """
        line = address >> self._line_shift
        cache_set = self._sets[line % self._num_sets]
        self.accesses += 1
        dirty = cache_set.pop(line, None)
        if dirty is not None:
            self.hits += 1
            cache_set[line] = dirty or write
            return True
        self.misses += 1
        if len(cache_set) >= self._ways:
            evicted_line = next(iter(cache_set))
            if cache_set.pop(evicted_line):
                self.writebacks += 1
            self.evictions += 1
        cache_set[line] = write
        return False

    def contains(self, address: int) -> bool:
        """True when the line holding ``address`` is resident (no LRU touch)."""
        line = address >> self._line_shift
        return line in self._sets[line % self._num_sets]

    def invalidate(self, address: int) -> bool:
        """Drop the line holding ``address`` (coherence); True if present."""
        line = address >> self._line_shift
        cache_set = self._sets[line % self._num_sets]
        if line in cache_set:
            del cache_set[line]
            self.invalidations += 1
            return True
        return False

    def invalidate_line(self, line: int) -> bool:
        """Drop a line by line id (coherence fast path)."""
        cache_set = self._sets[line % self._num_sets]
        if line in cache_set:
            del cache_set[line]
            self.invalidations += 1
            return True
        return False

    def flush(self) -> int:
        """Empty the cache (e.g. at simulation phase boundaries)."""
        resident = sum(len(s) for s in self._sets)
        for cache_set in self._sets:
            cache_set.clear()
        return resident

    # -- statistics -----------------------------------------------------------

    @property
    def resident_lines(self) -> int:
        """Number of lines currently cached."""
        return sum(len(s) for s in self._sets)

    @property
    def miss_rate(self) -> float:
        """Misses / accesses (0 when never accessed)."""
        return self.misses / self.accesses if self.accesses else 0.0

    def reset_stats(self) -> None:
        """Zero the counters without disturbing cache contents (warm-up)."""
        self.accesses = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0
        self.invalidations = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cfg = self.config
        return (f"<Cache {cfg.name} {cfg.size_bytes // 1024}KB "
                f"{cfg.associativity}-way miss_rate={self.miss_rate:.3f}>")
