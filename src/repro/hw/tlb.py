"""A TLB modeled as a set-associative cache of page numbers."""

from __future__ import annotations

from repro.hw.machine import CacheConfig, TlbConfig
from repro.hw.cache import SetAssociativeCache


class Tlb:
    """Data TLB: translates byte addresses at page granularity.

    Internally reuses :class:`SetAssociativeCache` with one "line" per
    page.  A fully associative TLB is the single-set special case
    (``entries == associativity``), which is how the Xeon MP's DTLB is
    configured.
    """

    def __init__(self, config: TlbConfig):
        self.config = config
        cache_config = CacheConfig(
            name="TLB",
            size_bytes=config.entries * config.page_bytes,
            line_bytes=config.page_bytes,
            associativity=config.associativity,
        )
        self._cache = SetAssociativeCache(cache_config)

    def access(self, address: int) -> bool:
        """Translate ``address``; returns True on TLB hit."""
        return self._cache.access_hit(address)

    def flush(self) -> int:
        """Full TLB flush (address-space switch); returns entries dropped."""
        return self._cache.flush()

    @property
    def accesses(self) -> int:
        """Translations attempted so far."""
        return self._cache.accesses

    @property
    def misses(self) -> int:
        """Translations that missed the TLB."""
        return self._cache.misses

    @property
    def miss_rate(self) -> float:
        """misses / accesses (0 before any access)."""
        return self._cache.miss_rate

    def reset_stats(self) -> None:
        """Zero the access/miss counters (entries are kept)."""
        self._cache.reset_stats()
