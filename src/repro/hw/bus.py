"""Front-side bus and IOQ (in-order queue) timing model.

Section 5.2 of the paper attributes the CPI growth with processor count
to bus traffic: as utilization rises, the time for a bus transaction to
complete once it enters the IOQ rises (Figure 16), which lengthens every
L3 miss (the Table 4 ``L3`` term adds the bus-transaction time in excess
of the 1P baseline).

The model here is an M/G/1-style queue on the shared bus:

- every L3 miss generates a line fill, and dirty evictions add writeback
  transactions;
- each transaction occupies the bus for ``occupancy_cycles``;
- utilization ``U = rate_per_cycle * occupancy_cycles`` (capped);
- IOQ time ``= base + queue_weight * occupancy * U / (1 - U)``.

The ``queue_weight`` factor folds in snoop and arbitration costs that a
pure data-phase M/G/1 would understate on a shared MP bus.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.machine import BusConfig


@dataclass(frozen=True)
class BusLoad:
    """A bus demand operating point."""

    utilization: float
    transactions_per_cycle: float


class BusModel:
    """Turns bus transaction rates into utilization and IOQ latency."""

    def __init__(self, config: BusConfig):
        self.config = config

    def utilization(self, transactions_per_cycle: float) -> float:
        """Fraction of cycles the bus is transferring data.

        ``transactions_per_cycle`` is the system-wide rate (all CPUs).
        The result is capped at ``max_utilization`` — a saturated bus
        backpressures the CPUs rather than exceeding 100% occupancy.
        """
        if transactions_per_cycle < 0:
            raise ValueError("transaction rate must be >= 0")
        raw = transactions_per_cycle * self.config.occupancy_cycles
        return min(raw, self.config.max_utilization)

    def transaction_time(self, utilization: float) -> float:
        """Average cycles for a transaction to complete once in the IOQ.

        At zero load this is ``base_transaction_cycles`` (102 on the 1P
        Xeon); queueing delay grows hyperbolically with utilization.
        """
        if not 0.0 <= utilization <= 1.0:
            raise ValueError(f"utilization out of range: {utilization}")
        u = min(utilization, self.config.max_utilization)
        queue = self.config.queue_weight * self.config.occupancy_cycles * u / (1.0 - u)
        return self.config.base_transaction_cycles + queue

    def load_for(self, mpi: float, cpi: float, processors: int,
                 writeback_ratio: float = 0.0) -> BusLoad:
        """Operating point for a given per-CPU miss profile.

        Each CPU retires ``1 / cpi`` instructions per cycle and so issues
        ``mpi / cpi`` line fills per cycle; dirty evictions add
        ``writeback_ratio`` extra transactions per fill.
        """
        if mpi < 0 or writeback_ratio < 0:
            raise ValueError("rates must be >= 0")
        if cpi <= 0:
            raise ValueError("cpi must be positive")
        if processors <= 0:
            raise ValueError("processors must be positive")
        rate = processors * (mpi / cpi) * (1.0 + writeback_ratio)
        return BusLoad(utilization=self.utilization(rate),
                       transactions_per_cycle=rate)

    def excess_time(self, utilization: float) -> float:
        """IOQ time above the unloaded baseline (the Table 4 delta term)."""
        return self.transaction_time(utilization) - self.config.base_transaction_cycles
