"""Per-CPU cache stacks and the SMP assembly.

Each CPU has a private trace cache (code), unified L2 and L3 (inclusive),
a data TLB, and a branch predictor — mirroring the Xeon MP's private
per-package hierarchy.  The :class:`SmpHierarchy` wires ``P`` of these to
one :class:`~repro.hw.coherence.CoherenceDirectory` and splits every event
count into user and kernel buckets, which is what the paper's
user/OS-space figures (5, 6, 10, 11, 14, 15) need.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.hw.branch import BimodalPredictor
from repro.hw.cache import SetAssociativeCache
from repro.hw.coherence import CoherenceDirectory
from repro.hw.machine import CacheConfig, MachineConfig
from repro.hw.tlb import Tlb


def scaled_cache_config(config: CacheConfig, scale: int) -> CacheConfig:
    """Shrink a cache by ``scale`` while keeping line size and ways.

    The microarchitecture simulation runs a thinned reference stream, so
    the caches are shrunk by the same resolution factor (DESIGN.md §6).
    The result always keeps at least one full set.
    """
    if scale < 1:
        raise ValueError("scale must be >= 1")
    lines_per_set = config.associativity
    target_lines = max(lines_per_set, config.total_lines // scale)
    # Round down to a whole number of sets.
    target_lines -= target_lines % lines_per_set
    return replace(config, size_bytes=target_lines * config.line_bytes)


@dataclass
class SplitCount:
    """An event count split into user and kernel parts."""

    user: int = 0
    kernel: int = 0

    @property
    def total(self) -> int:
        """User + OS total."""
        return self.user + self.kernel

    def add(self, kernel: bool, amount: int = 1) -> None:
        """Accumulate into the user or OS bucket."""
        if kernel:
            self.kernel += amount
        else:
            self.user += amount


@dataclass
class HierarchyCounts:
    """All Table 2 event counts produced by a hierarchy run."""

    data_refs: SplitCount = field(default_factory=SplitCount)
    code_refs: SplitCount = field(default_factory=SplitCount)
    branches: SplitCount = field(default_factory=SplitCount)
    mispredicts: SplitCount = field(default_factory=SplitCount)
    tlb_misses: SplitCount = field(default_factory=SplitCount)
    tc_misses: SplitCount = field(default_factory=SplitCount)
    l2_misses: SplitCount = field(default_factory=SplitCount)
    l3_misses: SplitCount = field(default_factory=SplitCount)
    l3_writebacks: SplitCount = field(default_factory=SplitCount)
    coherence_misses: SplitCount = field(default_factory=SplitCount)
    context_switches: int = 0

    def as_counter_dict(self) -> dict[str, float]:
        """Flat totals for observability spans (:mod:`repro.obs`).

        One entry per Table 2 count (user+kernel summed), computed once
        when a phase span closes — the cache/TLB walk hot paths above
        are never touched by tracing.
        """
        flat: dict[str, float] = {}
        for name in ("data_refs", "code_refs", "branches", "mispredicts",
                     "tlb_misses", "tc_misses", "l2_misses", "l3_misses",
                     "l3_writebacks", "coherence_misses"):
            split: SplitCount = getattr(self, name)
            flat[name] = float(split.total)
        flat["context_switches"] = float(self.context_switches)
        return flat


class CpuHierarchy:
    """One CPU's private TC / L2 / L3 / DTLB / branch predictor."""

    def __init__(self, machine: MachineConfig, cpu: int, scale: int = 1):
        self.cpu = cpu
        self.machine = machine
        self.tc = SetAssociativeCache(scaled_cache_config(machine.tc, scale))
        self.l2 = SetAssociativeCache(scaled_cache_config(machine.l2, scale))
        self.l3 = SetAssociativeCache(scaled_cache_config(machine.l3, scale))
        self.dtlb = Tlb(machine.dtlb)
        self.predictor = BimodalPredictor()
        self.counts = HierarchyCounts()
        if self.l2.config.line_bytes != self.l3.config.line_bytes:
            raise ValueError("L2 and L3 must share a line size")
        # Bound-method aliases for the per-reference fast path.  The
        # underlying cache objects are never replaced after construction
        # (flush/invalidate mutate them in place), so the aliases stay
        # valid for the hierarchy's lifetime.
        self._dtlb_hit = self.dtlb._cache.access_hit
        self._l2_hit = self.l2.access_hit
        self._l3_access = self.l3.access
        self._l2_invalidate = self.l2.invalidate_line
        self._tc_hit = self.tc.access_hit

    # The three per-reference entry points below increment SplitCount
    # buckets inline instead of via SplitCount.add(): together they run
    # several million times per configuration, and the method-call
    # overhead was a measurable share of the trace simulation.

    def data_access(self, address: int, write: bool, kernel: bool) -> tuple[bool, bool]:
        """One data reference; returns ``(l2_missed, l3_missed)``."""
        counts = self.counts
        refs = counts.data_refs
        if kernel:
            refs.kernel += 1
        else:
            refs.user += 1
        if not self._dtlb_hit(address):
            misses = counts.tlb_misses
            if kernel:
                misses.kernel += 1
            else:
                misses.user += 1
        if self._l2_hit(address, write):
            return False, False
        misses = counts.l2_misses
        if kernel:
            misses.kernel += 1
        else:
            misses.user += 1
        l3_result = self._l3_access(address, write)
        if l3_result.hit:
            return True, False
        misses = counts.l3_misses
        if kernel:
            misses.kernel += 1
        else:
            misses.user += 1
        if l3_result.writeback:
            counts.l3_writebacks.add(kernel)
        if l3_result.evicted_line is not None:
            # Inclusive hierarchy: an L3 eviction drops the L2 copy too.
            self._l2_invalidate(l3_result.evicted_line)
        return True, True

    def fetch(self, address: int, kernel: bool) -> bool:
        """One instruction-fetch reference; returns True on a TC miss.

        A TC miss is filled from L2/L3, so code misses contribute to the
        unified cache traffic as on the real machine.
        """
        counts = self.counts
        refs = counts.code_refs
        if kernel:
            refs.kernel += 1
        else:
            refs.user += 1
        if self._tc_hit(address):
            return False
        counts.tc_misses.add(kernel)
        if not self._l2_hit(address):
            counts.l2_misses.add(kernel)
            l3_result = self._l3_access(address)
            if not l3_result.hit:
                counts.l3_misses.add(kernel)
                if l3_result.writeback:
                    counts.l3_writebacks.add(kernel)
                if l3_result.evicted_line is not None:
                    self._l2_invalidate(l3_result.evicted_line)
        return True

    def branch(self, pc: int, taken: bool, kernel: bool) -> bool:
        """One conditional branch; returns True when predicted correctly."""
        counts = self.counts
        refs = counts.branches
        if kernel:
            refs.kernel += 1
        else:
            refs.user += 1
        correct = self.predictor.predict_and_update(pc, taken)
        if not correct:
            counts.mispredicts.add(kernel)
        return correct

    def context_switch(self) -> None:
        """Address-space switch: the DTLB is flushed."""
        self.dtlb.flush()
        self.counts.context_switches += 1

    def invalidate_data_line(self, line: int) -> None:
        """Coherence invalidation of a (L2/L3-sized) line id."""
        self.l2.invalidate_line(line)
        self.l3.invalidate_line(line)


class SmpHierarchy:
    """``P`` private hierarchies kept coherent by one directory."""

    def __init__(self, machine: MachineConfig, processors: int, scale: int = 1):
        if not 1 <= processors <= machine.max_processors:
            raise ValueError(
                f"processors must be 1..{machine.max_processors}, got {processors}")
        self.machine = machine
        self.processors = processors
        self.cpus = [CpuHierarchy(machine, cpu, scale) for cpu in range(processors)]
        self.directory = CoherenceDirectory(processors, self._invalidate)
        self._line_shift = self.cpus[0].l3.config.line_bytes.bit_length() - 1

    def _invalidate(self, cpu: int, line: int) -> None:
        self.cpus[cpu].invalidate_data_line(line)

    def data_access(self, cpu: int, address: int, write: bool, kernel: bool,
                    shared: bool = False) -> None:
        """A data reference on ``cpu``; ``shared`` lines engage coherence."""
        hierarchy = self.cpus[cpu]
        l2_miss, l3_miss = hierarchy.data_access(address, write, kernel)
        if not shared or self.processors == 1:
            return
        line = address >> self._line_shift
        if write:
            coherence_miss = self.directory.note_write(cpu, line, l3_miss)
        else:
            coherence_miss = self.directory.note_read(cpu, line, l3_miss)
        if coherence_miss:
            hierarchy.counts.coherence_misses.add(kernel)

    def fetch(self, cpu: int, address: int, kernel: bool) -> None:
        """An instruction fetch on ``cpu`` (code is read-shared: no coherence)."""
        self.cpus[cpu].fetch(address, kernel)

    def branch(self, cpu: int, pc: int, taken: bool, kernel: bool) -> None:
        """Run one branch through the predictor, counting the outcome."""
        self.cpus[cpu].branch(pc, taken, kernel)

    # -- batched reference walks --------------------------------------------
    #
    # The three *_run entry points below are the trace generator's fast
    # path (DESIGN.md §13): one call walks a whole precomputed run of
    # references through the hierarchy with the cache/TLB dict operations
    # inlined and every counter accumulated in locals, flushed once at
    # the end.  They are required to be *bit-identical* to issuing the
    # same references one at a time through data_access/fetch/branch —
    # same state evolution, same counter totals — which the hw test
    # suite checks by replaying identical streams through both paths.

    def access_run(self, cpu: int, run: list, kernel: bool) -> None:
        """Walk packed data references on ``cpu`` in one pass.

        Each entry packs one reference as ``(address << 2) | write << 1
        | shared`` — ``kernel`` is constant per run because the trace
        generator batches at segment granularity (a user segment or a
        kernel burst, never a mix).  Streaks of hits never leave the
        inlined probe loop; only misses descend into the L3/eviction/
        coherence slow path.
        """
        hierarchy = self.cpus[cpu]
        counts = hierarchy.counts
        tlb_cache = hierarchy.dtlb._cache
        tlb_sets = tlb_cache._sets
        tlb_shift = tlb_cache._line_shift
        tlb_nsets = tlb_cache._num_sets
        tlb_ways = tlb_cache._ways
        l2 = hierarchy.l2
        l2_sets = l2._sets
        l2_shift = l2._line_shift
        l2_nsets = l2._num_sets
        l2_ways = l2._ways
        l3 = hierarchy.l3
        l3_sets = l3._sets
        l3_nsets = l3._num_sets
        l3_ways = l3._ways
        multi = self.processors > 1
        directory = self.directory
        note_read = directory.note_read
        note_write = directory.note_write
        # Local accumulators: Table 2 split counts for this run...
        tlb_missed_refs = l2_missed_refs = l3_missed_refs = 0
        l3_writeback_refs = coherence_refs = 0
        # ...and the per-cache statistics attributes.
        t_hits = t_misses = t_evictions = 0
        l2_hits = l2_misses = l2_evictions = l2_writebacks = 0
        l2_invalidations = 0
        l3_accesses = l3_hits = l3_misses = l3_evictions = l3_writebacks = 0
        # Hit-streak short-circuits: a reference to the page/line the
        # previous reference touched is a guaranteed hit on an entry
        # that is already most-recent, so the pop/reinsert LRU dance is
        # the identity — skip it (a write may still need to set the
        # dirty bit; in-place assignment keeps the LRU position).  The
        # directory can only invalidate *other* CPUs' lines from this
        # run, so the streak line cannot vanish mid-run.
        last_page = -1
        last_line = -1
        for code in run:
            address = code >> 2
            # DTLB probe (page granularity; translations are never dirty).
            page = address >> tlb_shift
            if page == last_page:
                t_hits += 1
            else:
                last_page = page
                tlb_set = tlb_sets[page % tlb_nsets]
                if tlb_set.pop(page, None) is not None:
                    t_hits += 1
                    tlb_set[page] = False
                else:
                    t_misses += 1
                    tlb_missed_refs += 1
                    if len(tlb_set) >= tlb_ways:
                        del tlb_set[next(iter(tlb_set))]
                        t_evictions += 1
                    tlb_set[page] = False
            # L2 probe (L2 and L3 share a line size: one line id).
            write = code & 2
            line = address >> l2_shift
            if line == last_line:
                l2_hits += 1
                l3_missed = False
                if write:
                    l2_sets[line % l2_nsets][line] = True
            else:
                last_line = line
                l2_set = l2_sets[line % l2_nsets]
                dirty = l2_set.pop(line, None)
                if dirty is not None:
                    l2_hits += 1
                    l2_set[line] = dirty or write != 0
                    l3_missed = False
                else:
                    l2_misses += 1
                    l2_missed_refs += 1
                    if len(l2_set) >= l2_ways:
                        victim = next(iter(l2_set))
                        if l2_set.pop(victim):
                            l2_writebacks += 1
                        l2_evictions += 1
                    l2_set[line] = write != 0
                    # L3 access, with victim info for inclusion.
                    l3_accesses += 1
                    l3_set = l3_sets[line % l3_nsets]
                    dirty = l3_set.pop(line, None)
                    if dirty is not None:
                        l3_hits += 1
                        l3_set[line] = dirty or write != 0
                        l3_missed = False
                    else:
                        l3_misses += 1
                        l3_missed_refs += 1
                        l3_missed = True
                        if len(l3_set) >= l3_ways:
                            victim = next(iter(l3_set))
                            if l3_set.pop(victim):
                                l3_writebacks += 1
                                l3_writeback_refs += 1
                            l3_evictions += 1
                            # Inclusive hierarchy: drop the L2 copy too.
                            victim_set = l2_sets[victim % l2_nsets]
                            if victim in victim_set:
                                del victim_set[victim]
                                l2_invalidations += 1
                        l3_set[line] = write != 0
            if multi and code & 1:
                if write:
                    if note_write(cpu, line, l3_missed):
                        coherence_refs += 1
                elif note_read(cpu, line, l3_missed):
                    coherence_refs += 1
        refs = len(run)
        if kernel:
            counts.data_refs.kernel += refs
            counts.tlb_misses.kernel += tlb_missed_refs
            counts.l2_misses.kernel += l2_missed_refs
            counts.l3_misses.kernel += l3_missed_refs
            counts.l3_writebacks.kernel += l3_writeback_refs
            counts.coherence_misses.kernel += coherence_refs
        else:
            counts.data_refs.user += refs
            counts.tlb_misses.user += tlb_missed_refs
            counts.l2_misses.user += l2_missed_refs
            counts.l3_misses.user += l3_missed_refs
            counts.l3_writebacks.user += l3_writeback_refs
            counts.coherence_misses.user += coherence_refs
        tlb_cache.accesses += refs
        tlb_cache.hits += t_hits
        tlb_cache.misses += t_misses
        tlb_cache.evictions += t_evictions
        l2.accesses += refs
        l2.hits += l2_hits
        l2.misses += l2_misses
        l2.evictions += l2_evictions
        l2.writebacks += l2_writebacks
        l2.invalidations += l2_invalidations
        l3.accesses += l3_accesses
        l3.hits += l3_hits
        l3.misses += l3_misses
        l3.evictions += l3_evictions
        l3.writebacks += l3_writebacks

    def fetch_run(self, cpu: int, run: list, kernel: bool) -> None:
        """Walk a run of instruction-fetch byte addresses in one pass.

        Code is read-shared, so no coherence; TC misses fill through
        L2/L3 exactly as :meth:`CpuHierarchy.fetch` does.
        """
        hierarchy = self.cpus[cpu]
        counts = hierarchy.counts
        tc = hierarchy.tc
        tc_sets = tc._sets
        tc_shift = tc._line_shift
        tc_nsets = tc._num_sets
        tc_ways = tc._ways
        l2 = hierarchy.l2
        l2_sets = l2._sets
        l2_shift = l2._line_shift
        l2_nsets = l2._num_sets
        l2_ways = l2._ways
        l3 = hierarchy.l3
        l3_sets = l3._sets
        l3_nsets = l3._num_sets
        l3_ways = l3._ways
        tc_missed_refs = l2_missed_refs = l3_missed_refs = 0
        l3_writeback_refs = 0
        tc_hits = tc_misses = tc_evictions = 0
        l2_accesses = l2_hits = l2_misses = l2_evictions = l2_writebacks = 0
        l2_invalidations = 0
        l3_accesses = l3_hits = l3_misses = l3_evictions = l3_writebacks = 0
        # Hit-streak short-circuit (same argument as access_run): a
        # refetch of the line just fetched is a hit on the MRU entry,
        # so the LRU pop/reinsert is the identity.
        last_tc = -1
        for address in run:
            tc_line = address >> tc_shift
            if tc_line == last_tc:
                tc_hits += 1
                continue
            last_tc = tc_line
            tc_set = tc_sets[tc_line % tc_nsets]
            if tc_set.pop(tc_line, None) is not None:
                tc_hits += 1
                tc_set[tc_line] = False
                continue
            tc_misses += 1
            tc_missed_refs += 1
            if len(tc_set) >= tc_ways:
                del tc_set[next(iter(tc_set))]
                tc_evictions += 1
            tc_set[tc_line] = False
            # Fill from L2/L3 (unified: code rides the data counters).
            l2_accesses += 1
            line = address >> l2_shift
            l2_set = l2_sets[line % l2_nsets]
            dirty = l2_set.pop(line, None)
            if dirty is not None:
                l2_hits += 1
                l2_set[line] = dirty
                continue
            l2_misses += 1
            l2_missed_refs += 1
            if len(l2_set) >= l2_ways:
                victim = next(iter(l2_set))
                if l2_set.pop(victim):
                    l2_writebacks += 1
                l2_evictions += 1
            l2_set[line] = False
            l3_accesses += 1
            l3_set = l3_sets[line % l3_nsets]
            dirty = l3_set.pop(line, None)
            if dirty is not None:
                l3_hits += 1
                l3_set[line] = dirty
                continue
            l3_misses += 1
            l3_missed_refs += 1
            if len(l3_set) >= l3_ways:
                victim = next(iter(l3_set))
                if l3_set.pop(victim):
                    l3_writebacks += 1
                    l3_writeback_refs += 1
                l3_evictions += 1
                victim_set = l2_sets[victim % l2_nsets]
                if victim in victim_set:
                    del victim_set[victim]
                    l2_invalidations += 1
            l3_set[line] = False
        refs = len(run)
        if kernel:
            counts.code_refs.kernel += refs
            counts.tc_misses.kernel += tc_missed_refs
            counts.l2_misses.kernel += l2_missed_refs
            counts.l3_misses.kernel += l3_missed_refs
            counts.l3_writebacks.kernel += l3_writeback_refs
        else:
            counts.code_refs.user += refs
            counts.tc_misses.user += tc_missed_refs
            counts.l2_misses.user += l2_missed_refs
            counts.l3_misses.user += l3_missed_refs
            counts.l3_writebacks.user += l3_writeback_refs
        tc.accesses += refs
        tc.hits += tc_hits
        tc.misses += tc_misses
        tc.evictions += tc_evictions
        l2.accesses += l2_accesses
        l2.hits += l2_hits
        l2.misses += l2_misses
        l2.evictions += l2_evictions
        l2.writebacks += l2_writebacks
        l2.invalidations += l2_invalidations
        l3.accesses += l3_accesses
        l3.hits += l3_hits
        l3.misses += l3_misses
        l3.evictions += l3_evictions
        l3.writebacks += l3_writebacks

    def branch_run(self, cpu: int, run: list, kernel: bool) -> None:
        """Walk packed branches ``(site << 1) | taken`` in one pass."""
        hierarchy = self.cpus[cpu]
        counts = hierarchy.counts
        predictor = hierarchy.predictor
        table = predictor._table
        size = predictor.table_size
        mispredicted = 0
        for code in run:
            index = (code >> 1) % size
            state = table[index]
            if code & 1:
                if state < 2:
                    mispredicted += 1
                if state < 3:
                    table[index] = state + 1
            else:
                if state >= 2:
                    mispredicted += 1
                if state > 0:
                    table[index] = state - 1
        refs = len(run)
        predictor.predictions += refs
        predictor.mispredictions += mispredicted
        if kernel:
            counts.branches.kernel += refs
            counts.mispredicts.kernel += mispredicted
        else:
            counts.branches.user += refs
            counts.mispredicts.user += mispredicted

    def context_switch(self, cpu: int) -> None:
        """Apply context-switch perturbation to TLBs and caches."""
        self.cpus[cpu].context_switch()

    def merged_counts(self) -> HierarchyCounts:
        """Sum of all CPUs' event counts."""
        merged = HierarchyCounts()
        for hierarchy in self.cpus:
            counts = hierarchy.counts
            for name in ("data_refs", "code_refs", "branches", "mispredicts",
                         "tlb_misses", "tc_misses", "l2_misses", "l3_misses",
                         "l3_writebacks", "coherence_misses"):
                target: SplitCount = getattr(merged, name)
                source: SplitCount = getattr(counts, name)
                target.user += source.user
                target.kernel += source.kernel
            merged.context_switches += counts.context_switches
        return merged
