"""Per-CPU cache stacks and the SMP assembly.

Each CPU has a private trace cache (code), unified L2 and L3 (inclusive),
a data TLB, and a branch predictor — mirroring the Xeon MP's private
per-package hierarchy.  The :class:`SmpHierarchy` wires ``P`` of these to
one :class:`~repro.hw.coherence.CoherenceDirectory` and splits every event
count into user and kernel buckets, which is what the paper's
user/OS-space figures (5, 6, 10, 11, 14, 15) need.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.hw.branch import BimodalPredictor
from repro.hw.cache import SetAssociativeCache
from repro.hw.coherence import CoherenceDirectory
from repro.hw.machine import CacheConfig, MachineConfig
from repro.hw.tlb import Tlb


def scaled_cache_config(config: CacheConfig, scale: int) -> CacheConfig:
    """Shrink a cache by ``scale`` while keeping line size and ways.

    The microarchitecture simulation runs a thinned reference stream, so
    the caches are shrunk by the same resolution factor (DESIGN.md §6).
    The result always keeps at least one full set.
    """
    if scale < 1:
        raise ValueError("scale must be >= 1")
    lines_per_set = config.associativity
    target_lines = max(lines_per_set, config.total_lines // scale)
    # Round down to a whole number of sets.
    target_lines -= target_lines % lines_per_set
    return replace(config, size_bytes=target_lines * config.line_bytes)


@dataclass
class SplitCount:
    """An event count split into user and kernel parts."""

    user: int = 0
    kernel: int = 0

    @property
    def total(self) -> int:
        """User + OS total."""
        return self.user + self.kernel

    def add(self, kernel: bool, amount: int = 1) -> None:
        """Accumulate into the user or OS bucket."""
        if kernel:
            self.kernel += amount
        else:
            self.user += amount


@dataclass
class HierarchyCounts:
    """All Table 2 event counts produced by a hierarchy run."""

    data_refs: SplitCount = field(default_factory=SplitCount)
    code_refs: SplitCount = field(default_factory=SplitCount)
    branches: SplitCount = field(default_factory=SplitCount)
    mispredicts: SplitCount = field(default_factory=SplitCount)
    tlb_misses: SplitCount = field(default_factory=SplitCount)
    tc_misses: SplitCount = field(default_factory=SplitCount)
    l2_misses: SplitCount = field(default_factory=SplitCount)
    l3_misses: SplitCount = field(default_factory=SplitCount)
    l3_writebacks: SplitCount = field(default_factory=SplitCount)
    coherence_misses: SplitCount = field(default_factory=SplitCount)
    context_switches: int = 0

    def as_counter_dict(self) -> dict[str, float]:
        """Flat totals for observability spans (:mod:`repro.obs`).

        One entry per Table 2 count (user+kernel summed), computed once
        when a phase span closes — the cache/TLB walk hot paths above
        are never touched by tracing.
        """
        flat: dict[str, float] = {}
        for name in ("data_refs", "code_refs", "branches", "mispredicts",
                     "tlb_misses", "tc_misses", "l2_misses", "l3_misses",
                     "l3_writebacks", "coherence_misses"):
            split: SplitCount = getattr(self, name)
            flat[name] = float(split.total)
        flat["context_switches"] = float(self.context_switches)
        return flat


class CpuHierarchy:
    """One CPU's private TC / L2 / L3 / DTLB / branch predictor."""

    def __init__(self, machine: MachineConfig, cpu: int, scale: int = 1):
        self.cpu = cpu
        self.machine = machine
        self.tc = SetAssociativeCache(scaled_cache_config(machine.tc, scale))
        self.l2 = SetAssociativeCache(scaled_cache_config(machine.l2, scale))
        self.l3 = SetAssociativeCache(scaled_cache_config(machine.l3, scale))
        self.dtlb = Tlb(machine.dtlb)
        self.predictor = BimodalPredictor()
        self.counts = HierarchyCounts()
        if self.l2.config.line_bytes != self.l3.config.line_bytes:
            raise ValueError("L2 and L3 must share a line size")
        # Bound-method aliases for the per-reference fast path.  The
        # underlying cache objects are never replaced after construction
        # (flush/invalidate mutate them in place), so the aliases stay
        # valid for the hierarchy's lifetime.
        self._dtlb_hit = self.dtlb._cache.access_hit
        self._l2_hit = self.l2.access_hit
        self._l3_access = self.l3.access
        self._l2_invalidate = self.l2.invalidate_line
        self._tc_hit = self.tc.access_hit

    # The three per-reference entry points below increment SplitCount
    # buckets inline instead of via SplitCount.add(): together they run
    # several million times per configuration, and the method-call
    # overhead was a measurable share of the trace simulation.

    def data_access(self, address: int, write: bool, kernel: bool) -> tuple[bool, bool]:
        """One data reference; returns ``(l2_missed, l3_missed)``."""
        counts = self.counts
        refs = counts.data_refs
        if kernel:
            refs.kernel += 1
        else:
            refs.user += 1
        if not self._dtlb_hit(address):
            misses = counts.tlb_misses
            if kernel:
                misses.kernel += 1
            else:
                misses.user += 1
        if self._l2_hit(address, write):
            return False, False
        misses = counts.l2_misses
        if kernel:
            misses.kernel += 1
        else:
            misses.user += 1
        l3_result = self._l3_access(address, write)
        if l3_result.hit:
            return True, False
        misses = counts.l3_misses
        if kernel:
            misses.kernel += 1
        else:
            misses.user += 1
        if l3_result.writeback:
            counts.l3_writebacks.add(kernel)
        if l3_result.evicted_line is not None:
            # Inclusive hierarchy: an L3 eviction drops the L2 copy too.
            self._l2_invalidate(l3_result.evicted_line)
        return True, True

    def fetch(self, address: int, kernel: bool) -> bool:
        """One instruction-fetch reference; returns True on a TC miss.

        A TC miss is filled from L2/L3, so code misses contribute to the
        unified cache traffic as on the real machine.
        """
        counts = self.counts
        refs = counts.code_refs
        if kernel:
            refs.kernel += 1
        else:
            refs.user += 1
        if self._tc_hit(address):
            return False
        counts.tc_misses.add(kernel)
        if not self._l2_hit(address):
            counts.l2_misses.add(kernel)
            l3_result = self._l3_access(address)
            if not l3_result.hit:
                counts.l3_misses.add(kernel)
                if l3_result.writeback:
                    counts.l3_writebacks.add(kernel)
                if l3_result.evicted_line is not None:
                    self._l2_invalidate(l3_result.evicted_line)
        return True

    def branch(self, pc: int, taken: bool, kernel: bool) -> bool:
        """One conditional branch; returns True when predicted correctly."""
        counts = self.counts
        refs = counts.branches
        if kernel:
            refs.kernel += 1
        else:
            refs.user += 1
        correct = self.predictor.predict_and_update(pc, taken)
        if not correct:
            counts.mispredicts.add(kernel)
        return correct

    def context_switch(self) -> None:
        """Address-space switch: the DTLB is flushed."""
        self.dtlb.flush()
        self.counts.context_switches += 1

    def invalidate_data_line(self, line: int) -> None:
        """Coherence invalidation of a (L2/L3-sized) line id."""
        self.l2.invalidate_line(line)
        self.l3.invalidate_line(line)


class SmpHierarchy:
    """``P`` private hierarchies kept coherent by one directory."""

    def __init__(self, machine: MachineConfig, processors: int, scale: int = 1):
        if not 1 <= processors <= machine.max_processors:
            raise ValueError(
                f"processors must be 1..{machine.max_processors}, got {processors}")
        self.machine = machine
        self.processors = processors
        self.cpus = [CpuHierarchy(machine, cpu, scale) for cpu in range(processors)]
        self.directory = CoherenceDirectory(processors, self._invalidate)
        self._line_shift = self.cpus[0].l3.config.line_bytes.bit_length() - 1

    def _invalidate(self, cpu: int, line: int) -> None:
        self.cpus[cpu].invalidate_data_line(line)

    def data_access(self, cpu: int, address: int, write: bool, kernel: bool,
                    shared: bool = False) -> None:
        """A data reference on ``cpu``; ``shared`` lines engage coherence."""
        hierarchy = self.cpus[cpu]
        l2_miss, l3_miss = hierarchy.data_access(address, write, kernel)
        if not shared or self.processors == 1:
            return
        line = address >> self._line_shift
        if write:
            coherence_miss = self.directory.note_write(cpu, line, l3_miss)
        else:
            coherence_miss = self.directory.note_read(cpu, line, l3_miss)
        if coherence_miss:
            hierarchy.counts.coherence_misses.add(kernel)

    def fetch(self, cpu: int, address: int, kernel: bool) -> None:
        """An instruction fetch on ``cpu`` (code is read-shared: no coherence)."""
        self.cpus[cpu].fetch(address, kernel)

    def branch(self, cpu: int, pc: int, taken: bool, kernel: bool) -> None:
        """Run one branch through the predictor, counting the outcome."""
        self.cpus[cpu].branch(pc, taken, kernel)

    def context_switch(self, cpu: int) -> None:
        """Apply context-switch perturbation to TLBs and caches."""
        self.cpus[cpu].context_switch()

    def merged_counts(self) -> HierarchyCounts:
        """Sum of all CPUs' event counts."""
        merged = HierarchyCounts()
        for hierarchy in self.cpus:
            counts = hierarchy.counts
            for name in ("data_refs", "code_refs", "branches", "mispredicts",
                         "tlb_misses", "tc_misses", "l2_misses", "l3_misses",
                         "l3_writebacks", "coherence_misses"):
                target: SplitCount = getattr(merged, name)
                source: SplitCount = getattr(counts, name)
                target.user += source.user
                target.kernel += source.kernel
            merged.context_switches += counts.context_switches
        return merged
