"""Analytical cache-miss models.

Closed-form companions to the trace-driven simulation: fast, noiseless
predictions of steady-state miss behavior under the independent
reference model (IRM).  They serve two purposes:

- **cross-checks** — the simulated caches should agree with the IRM
  prediction for IRM-like streams (tested in ``tests/hw``);
- **speed** — design-space sweeps (e.g. "L3 size vs MPI" over dozens of
  points) can run in microseconds instead of simulating traces.

Models:

- :func:`irm_hit_rate` — hit rate of an LRU-approximating cache of
  ``capacity`` lines under an arbitrary popularity distribution, via
  Che's approximation (the characteristic-time method), which is
  accurate for LRU across skews.
- :func:`zipf_popularities` — the popularity vector used throughout the
  workload model.
- :func:`working_set_miss_rate` — the two-regime formula behind the
  paper's cached/scaled intuition: fully resident below capacity,
  popularity-tail misses above.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.sim.randomness import zipf_cdf


def zipf_popularities(n: int, skew: float) -> list[float]:
    """Normalized Zipf(``skew``) probabilities over ``n`` items."""
    cdf = zipf_cdf(n, skew)
    out = [cdf[0]]
    for previous, current in zip(cdf, cdf[1:]):
        out.append(current - previous)
    return out


def che_characteristic_time(popularities: Sequence[float],
                            capacity: int,
                            tolerance: float = 1e-9,
                            max_iterations: int = 200) -> float:
    """Solve Che's fixed point: sum_i (1 - e^{-p_i T}) = capacity.

    ``T`` is the characteristic time (in references) a line survives in
    an LRU cache of ``capacity`` lines under IRM traffic.
    """
    if capacity <= 0:
        raise ValueError("capacity must be positive")
    if not popularities:
        raise ValueError("need a popularity distribution")
    if capacity >= len(popularities):
        return math.inf
    total = sum(popularities)
    if total <= 0:
        raise ValueError("popularities must have positive mass")
    probabilities = [p / total for p in popularities]

    def occupancy(t: float) -> float:
        return sum(1.0 - math.exp(-p * t) for p in probabilities)

    low, high = 0.0, float(capacity)
    while occupancy(high) < capacity:
        high *= 2.0
        if high > 1e18:  # pragma: no cover - defensive
            return math.inf
    for _ in range(max_iterations):
        mid = 0.5 * (low + high)
        if occupancy(mid) < capacity:
            low = mid
        else:
            high = mid
        if high - low < tolerance * max(1.0, high):
            break
    return 0.5 * (low + high)


def irm_hit_rate(popularities: Sequence[float], capacity: int) -> float:
    """Steady-state LRU hit rate under IRM, by Che's approximation.

    ``hit = sum_i p_i (1 - e^{-p_i T})`` with T the characteristic time.
    """
    if capacity <= 0:
        return 0.0
    if capacity >= len(popularities):
        return 1.0
    total = sum(popularities)
    probabilities = [p / total for p in popularities]
    t = che_characteristic_time(probabilities, capacity)
    if math.isinf(t):
        return 1.0
    return sum(p * (1.0 - math.exp(-p * t)) for p in probabilities)


def working_set_miss_rate(working_set_lines: float, capacity_lines: int,
                          hot_fraction: float = 0.0) -> float:
    """The cached/scaled two-regime intuition as a formula.

    A fraction ``hot_fraction`` of references go to always-resident
    structures; the remainder spread uniformly over a working set.  The
    miss rate is 0 while the working set fits, then grows like
    ``1 - capacity/ws`` toward the ``1 - hot_fraction`` asymptote — the
    saturation the paper measures at ~60%.
    """
    if capacity_lines <= 0:
        raise ValueError("capacity must be positive")
    if working_set_lines < 0:
        raise ValueError("working set must be >= 0")
    if not 0.0 <= hot_fraction <= 1.0:
        raise ValueError("hot_fraction must be in [0, 1]")
    if working_set_lines <= capacity_lines:
        return 0.0
    cold = 1.0 - hot_fraction
    return cold * (1.0 - capacity_lines / working_set_lines)


def mpi_prediction(warehouses: int, lines_per_warehouse: float,
                   capacity_lines: int, refs_per_instruction: float,
                   hot_fraction: float = 0.4) -> float:
    """Analytic L3 MPI vs warehouses — the Figure 13 curve in one line.

    A design-space convenience: the knee sits where
    ``warehouses * lines_per_warehouse`` crosses ``capacity_lines`` and
    scales *linearly with cache capacity* under this model — which is
    exactly the capacity-proportional pivot shift the Figure 19
    reproduction documents as its divergence from the measured machine.
    """
    if warehouses <= 0 or lines_per_warehouse <= 0:
        raise ValueError("workload dimensions must be positive")
    if refs_per_instruction <= 0:
        raise ValueError("refs_per_instruction must be positive")
    miss_rate = working_set_miss_rate(
        warehouses * lines_per_warehouse, capacity_lines, hot_fraction)
    return miss_rate * refs_per_instruction
