"""Hardware model: caches, TLB, branch prediction, bus, coherence.

This package is the substitute for the paper's physical Intel Xeon MP
server (and the Quad Itanium2 used in Section 6.3).  It provides:

- :mod:`~repro.hw.machine` — machine configurations (geometry, stall
  costs from Table 3, bus and disk parameters) with presets for the two
  machines the paper measures.
- :mod:`~repro.hw.cache` — a set-associative, write-back cache with LRU
  replacement and full event accounting.
- :mod:`~repro.hw.tlb` — a TLB modeled as a cache of page numbers.
- :mod:`~repro.hw.branch` — a bimodal branch predictor.
- :mod:`~repro.hw.coherence` — a directory that counts invalidations and
  coherence misses between per-CPU cache hierarchies.
- :mod:`~repro.hw.hierarchy` — per-CPU TC/L2/L3 stacks glued to the
  shared coherence directory; produces the event rates of Table 2.
- :mod:`~repro.hw.bus` — the front-side-bus IOQ queueing model that turns
  bus utilization into bus-transaction time (Figure 16).
- :mod:`~repro.hw.trace` — synthetic reference-stream generation from
  workload statistics.
"""

from repro.hw.machine import (
    BusConfig,
    CacheConfig,
    DiskConfig,
    MachineConfig,
    StallCosts,
    TlbConfig,
    ITANIUM2_QUAD,
    XEON_MP_QUAD,
    machine_by_name,
)
from repro.hw.cache import AccessResult, SetAssociativeCache
from repro.hw.tlb import Tlb
from repro.hw.branch import BimodalPredictor
from repro.hw.bus import BusModel
from repro.hw.coherence import CoherenceDirectory
from repro.hw.hierarchy import CpuHierarchy, SmpHierarchy
from repro.hw.trace import (
    MicroarchRates,
    TraceGenerator,
    TraceParameters,
    TraceProfile,
)

__all__ = [
    "MicroarchRates",
    "TraceGenerator",
    "TraceParameters",
    "TraceProfile",
    "BusConfig",
    "CacheConfig",
    "DiskConfig",
    "MachineConfig",
    "StallCosts",
    "TlbConfig",
    "ITANIUM2_QUAD",
    "XEON_MP_QUAD",
    "machine_by_name",
    "AccessResult",
    "SetAssociativeCache",
    "Tlb",
    "BimodalPredictor",
    "BusModel",
    "CoherenceDirectory",
    "CpuHierarchy",
    "SmpHierarchy",
]
