"""Write-invalidate coherence directory across per-CPU cache hierarchies.

The Xeon MP system has private L2/L3 per processor kept coherent by
snooping on the shared bus.  This module models the protocol outcome (who
gets invalidated, which misses are coherence misses) without modeling the
snoop timing — Section 5.2's finding is precisely that coherence traffic
is *not* a major CPI factor on this system, and the reproduction checks
that the counted coherence misses stay a small share of all L3 misses.

Classification: a miss by CPU *i* on line *x* is a **coherence miss** when
*i* previously held *x* and lost it to another CPU's write (it would have
hit in an infinite cache without invalidations).
"""

from __future__ import annotations

from typing import Callable, Optional


class CoherenceDirectory:
    """Tracks sharers and modified ownership per cache line.

    The directory is driven by the :class:`~repro.hw.hierarchy.SmpHierarchy`
    on every data access.  ``invalidate_hook(cpu, line)`` is called for
    every remote copy that must be dropped, so the owning hierarchies can
    remove the line from their caches.
    """

    def __init__(self, processors: int,
                 invalidate_hook: Optional[Callable[[int, int], None]] = None):
        if processors <= 0:
            raise ValueError("processors must be positive")
        self.processors = processors
        self.invalidate_hook = invalidate_hook
        # line -> bitmask of CPUs holding the line
        self._sharers: dict[int, int] = {}
        # line -> CPU holding the line modified, if any
        self._modified: dict[int, int] = {}
        # per-CPU set of lines lost to remote writes (for miss classification)
        self._stolen: list[set[int]] = [set() for _ in range(processors)]
        self.invalidations = 0
        self.interventions = 0
        self.coherence_misses = 0

    def note_read(self, cpu: int, line: int, was_miss: bool) -> bool:
        """Record a read by ``cpu``; returns True for a coherence miss.

        A read of a line another CPU holds modified triggers an
        intervention (cache-to-cache supply) and demotes the owner.
        """
        self._check_cpu(cpu)
        is_coherence_miss = False
        if was_miss:
            if line in self._stolen[cpu]:
                self._stolen[cpu].discard(line)
                self.coherence_misses += 1
                is_coherence_miss = True
            owner = self._modified.get(line)
            if owner is not None and owner != cpu:
                self.interventions += 1
                del self._modified[line]
        self._sharers[line] = self._sharers.get(line, 0) | (1 << cpu)
        return is_coherence_miss

    def note_write(self, cpu: int, line: int, was_miss: bool) -> bool:
        """Record a write by ``cpu``; invalidates all remote copies."""
        self._check_cpu(cpu)
        is_coherence_miss = False
        if was_miss and line in self._stolen[cpu]:
            self._stolen[cpu].discard(line)
            self.coherence_misses += 1
            is_coherence_miss = True
        mask = self._sharers.get(line, 0)
        my_bit = 1 << cpu
        remote = mask & ~my_bit
        if remote:
            for other in range(self.processors):
                if remote & (1 << other):
                    self.invalidations += 1
                    self._stolen[other].add(line)
                    if self.invalidate_hook is not None:
                        self.invalidate_hook(other, line)
        owner = self._modified.get(line)
        if owner is not None and owner != cpu:
            self.interventions += 1
        self._sharers[line] = my_bit
        self._modified[line] = cpu
        return is_coherence_miss

    def note_eviction(self, cpu: int, line: int) -> None:
        """A line silently left ``cpu``'s hierarchy (capacity eviction)."""
        self._check_cpu(cpu)
        mask = self._sharers.get(line)
        if mask is None:
            return
        mask &= ~(1 << cpu)
        if mask:
            self._sharers[line] = mask
        else:
            del self._sharers[line]
        if self._modified.get(line) == cpu:
            del self._modified[line]
        # A capacity eviction is not a theft: do not classify a later miss
        # on this line as a coherence miss.
        self._stolen[cpu].discard(line)

    def sharer_count(self, line: int) -> int:
        """Number of CPUs currently holding ``line``."""
        return bin(self._sharers.get(line, 0)).count("1")

    def _check_cpu(self, cpu: int) -> None:
        if not 0 <= cpu < self.processors:
            raise ValueError(f"cpu {cpu} out of range (P={self.processors})")
