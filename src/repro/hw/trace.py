"""Synthetic reference-stream generation.

The paper measures microarchitectural event rates with hardware counters
while ODB runs.  We have no Oracle and no Xeon, so this module generates a
*statistically shaped* reference stream from the system-level behavior the
DES layer measures (blocks read per transaction, context switches per
transaction, OS instruction share) and runs it through the cache/TLB/
branch models of :mod:`repro.hw.hierarchy`.

Stream composition (per user transaction):

- **hot** — SGA metadata: buffer headers, latches, the library cache.
  Small, extremely reused, shared between CPUs (a fraction of accesses
  are writes, which is where coherence traffic comes from).
- **warm** — session state and dictionary caches: a mid-size set that
  fits L3 but not L2.  This is what keeps the L3 miss rate from
  saturating at 100%: the paper observes saturation near 60%.
- **block** — database block data.  Each warehouse contributes a few hot
  lines (index roots and upper levels, popular rows) and a tail of cold
  lines.  As ``W`` grows, this footprint spreads — the *cached region*
  slope of Figures 13/9 comes from here.
- **private** — per-server-process PGA and stack.

Kernel activity is generated as bursts per I/O and per context switch
against a fixed kernel footprint.  At small ``W`` the bursts are rare, so
kernel lines get evicted between bursts (high, noisy OS MPI — Figure 15);
at large ``W`` the bursts are frequent enough to keep the kernel hot set
resident (falling OS MPI), with the DTLB flushed on every switch.

Volumes are *thinned*: the simulated stream carries a calibrated number
of references per transaction, and the caches are shrunk by the same
resolution factor (``micro_scale``, see DESIGN.md §6).  Simulated miss
*ratios* are converted to per-instruction event rates through calibrated
real-machine reference densities (``*_density`` parameters).
"""

from __future__ import annotations

import math
from bisect import bisect_left
from dataclasses import dataclass

from repro.hw.hierarchy import HierarchyCounts, SmpHierarchy
from repro.hw.machine import MachineConfig
from repro.sim.randomness import RandomStreams, sample_cdf, zipf_cdf

# Region base addresses (byte addresses; regions far apart).
_HOT_BASE = 0
_WARM_BASE = 1 << 24
_PRIVATE_BASE = 1 << 25
_KERNEL_DATA_BASE = 1 << 28
_KERNEL_COLD_BASE = 1 << 29
_KERNEL_TASK_BASE = 3 << 28
_KERNEL_SYNC_BASE = 7 << 26
_BLOCK_BASE = 1 << 30
_USER_CODE_BASE = 0
_KERNEL_CODE_BASE = 1 << 22

_LINE = 128  # L2/L3 line size in bytes (both machines)
_CODE_LINE = 64  # TC line size


@dataclass(frozen=True)
class TraceParameters:
    """Calibration constants of the synthetic stream (DESIGN.md §5).

    Calibrated once against the paper's Xeon bands and then held fixed
    for every experiment, machine, and ablation.
    """

    # Real-machine reference densities (events per retired instruction)
    # used to convert simulated miss ratios into per-instruction rates.
    l2_ref_density: float = 0.018
    code_ref_density: float = 0.045
    tlb_ref_density: float = 0.012
    branch_density: float = 0.17
    os_ref_boost: float = 1.2

    # User stream composition.
    p_hot: float = 0.16
    p_warm: float = 0.22
    p_block: float = 0.38
    p_private: float = 0.24
    hot_write_prob: float = 0.06
    warm_write_prob: float = 0.02
    block_write_prob: float = 0.12
    private_write_prob: float = 0.40

    # Footprints, in cache lines of the scaled world.
    hot_lines: int = 64
    warm_lines: int = 320
    private_lines: int = 24
    kernel_data_lines: int = 224
    user_code_lines: int = 400
    kernel_code_lines: int = 160
    hot_blocks_per_warehouse: int = 3
    cold_blocks_per_warehouse: int = 160
    lines_per_block: int = 2

    # Popularity skews.
    hot_skew: float = 0.6
    warm_skew: float = 0.5
    code_skew: float = 0.8
    kernel_skew: float = 0.7
    block_skew: float = 0.7
    hot_block_prob: float = 0.88
    revisit_prob: float = 0.35

    # Simulated volumes per transaction.
    user_refs_per_txn: int = 110
    code_refs_per_txn: int = 55
    branches_per_txn: int = 55
    os_refs_per_io: int = 18
    os_refs_per_cs: int = 10
    os_base_refs: int = 6
    os_code_refs_per_burst: int = 8
    #: Per-I/O references to per-request structures (bio/request slabs)
    #: recycled from a small pool.  When I/O is rare the recycled lines
    #: have been evicted since last use (misses); when I/O is frequent
    #: the pool stays cache-resident (hits).  This is the slab-locality
    #: effect behind the paper's falling OS MPI (Figure 15).
    os_slab_refs_per_io: int = 6
    os_slab_pool_lines: int = 96
    #: Lines of per-process kernel state (task struct, kernel stack)
    #: touched on each context switch.  With many clients churning these
    #: spread across clients and contend for cache space.
    os_task_lines_per_client: int = 12
    os_task_refs_per_cs: int = 6
    #: Shared kernel synchronization structures (wait queues, semaphores)
    #: touched on contention-driven switches.  They are written from
    #: whichever CPU blocks, so they bounce between CPUs — the dominant
    #: OS-side miss source at the 10-warehouse contention spike.
    os_sync_lines: int = 16
    os_sync_refs_per_cs: int = 2

    # Cache shrink factor matching the stream thinning.
    micro_scale: int = 8

    def __post_init__(self) -> None:
        total = self.p_hot + self.p_warm + self.p_block + self.p_private
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"user mix must sum to 1, got {total}")


@dataclass(frozen=True)
class TraceProfile:
    """System-level inputs, produced by the DES layer per configuration."""

    warehouses: int
    processors: int
    clients: int
    user_ipx: float
    os_ipx: float
    reads_per_txn: float
    context_switches_per_txn: float

    def __post_init__(self) -> None:
        if self.warehouses <= 0 or self.processors <= 0 or self.clients <= 0:
            raise ValueError("warehouses, processors, clients must be positive")
        if min(self.user_ipx, self.os_ipx, self.reads_per_txn,
               self.context_switches_per_txn) < 0:
            raise ValueError("profile rates must be >= 0")


@dataclass(frozen=True)
class MicroarchRates:
    """Per-instruction event rates — the Table 2 quantities.

    ``user_l3_mpi`` / ``os_l3_mpi`` are normalized per user / OS
    instruction respectively (Figures 14, 15); ``l3_mpi`` per overall
    instruction (Figure 13).
    """

    mispredicts_per_instr: float
    tlb_misses_per_instr: float
    tc_misses_per_instr: float
    l2_misses_per_instr: float
    l3_misses_per_instr: float
    user_l3_mpi: float
    os_l3_mpi: float
    l3_writeback_ratio: float
    coherence_miss_fraction: float
    l3_miss_ratio: float

    def validate(self) -> None:
        """Sanity-check the miss-rate ordering (L3 <= L2)."""
        if self.l3_misses_per_instr > self.l2_misses_per_instr + 1e-12:
            raise ValueError("L3 misses cannot exceed L2 misses")


class TraceGenerator:
    """Drives an :class:`SmpHierarchy` with the synthetic stream."""

    def __init__(self, machine: MachineConfig, profile: TraceProfile,
                 streams: RandomStreams,
                 params: TraceParameters = TraceParameters()):
        self.machine = machine
        self.profile = profile
        self.params = params
        self.smp = SmpHierarchy(machine, profile.processors,
                                scale=params.micro_scale)
        self._rng = streams.stream("trace")
        p = params
        self._hot_cdf = zipf_cdf(p.hot_lines, p.hot_skew)
        self._warm_cdf = zipf_cdf(p.warm_lines, p.warm_skew)
        self._private_cdf = zipf_cdf(p.private_lines, 0.4)
        self._kernel_cdf = zipf_cdf(p.kernel_data_lines, p.kernel_skew)
        self._user_code_cdf = zipf_cdf(p.user_code_lines, p.code_skew)
        self._kernel_code_cdf = zipf_cdf(p.kernel_code_lines, p.code_skew)
        self._hot_block_cdf = zipf_cdf(p.hot_blocks_per_warehouse, p.block_skew)
        # Per-transaction recent-line window for within-transaction reuse.
        self._recent: list[int] = []
        self._slab_seq = 0
        self._txns_run = 0

    # -- address pickers ----------------------------------------------------

    # The segment methods below run in two batched phases (DESIGN.md
    # §13): a *generation* pass draws every random number in exactly the
    # order of the straightforward per-access formulation and packs the
    # resulting references into a flat run buffer (plain ints: address
    # plus flag bits — no per-access tuples or method calls), then a
    # single *walk* call (:meth:`repro.hw.hierarchy.SmpHierarchy.access_run`
    # and friends) replays the run through the cache models with the
    # probe loops inlined.  Both phases preserve the reference order, so
    # the cache state evolution — and therefore every count — is
    # bit-identical to the per-access path.

    def _pick(self, base: int, cdf, rng) -> int:
        return base + sample_cdf(rng, cdf) * _LINE

    def _pick_block_address(self, rng) -> int:
        p = self.params
        warehouse = rng.randrange(self.profile.warehouses)
        if rng.random() < p.hot_block_prob:
            block = bisect_left(self._hot_block_cdf, rng.random())
            block_id = warehouse * p.hot_blocks_per_warehouse + block
            region = 0
        else:
            block = rng.randrange(p.cold_blocks_per_warehouse)
            block_id = warehouse * p.cold_blocks_per_warehouse + block
            region = 1 << 38  # cold blocks live far from hot blocks
        line = rng.randrange(p.lines_per_block)
        return _BLOCK_BASE + region + (block_id * p.lines_per_block + line) * _LINE

    # -- stream segments ----------------------------------------------------

    def _user_data_segment(self, cpu: int, client: int, count: int) -> None:
        p = self.params
        rng = self._rng
        rand = rng.random
        # randrange draws are inlined as CPython's
        # Random._randbelow_with_getrandbits loop — identical getrandbits
        # sequence (the stream stays pinned), minus two interpreter
        # frames per draw; _pick_block_address is inlined the same way.
        getrandbits = rng.getrandbits
        recent = self._recent
        hot_cdf = self._hot_cdf
        warm_cdf = self._warm_cdf
        private_cdf = self._private_cdf
        hot_block_cdf = self._hot_block_cdf
        p_hot = p.p_hot
        p_hot_warm = p.p_hot + p.p_warm
        p_hot_warm_block = p_hot_warm + p.p_block
        hot_write_prob = p.hot_write_prob
        warm_write_prob = p.warm_write_prob
        block_write_prob = p.block_write_prob
        private_write_prob = p.private_write_prob
        revisit_prob = p.revisit_prob
        hot_block_prob = p.hot_block_prob
        wh_count = self.profile.warehouses
        wh_bits = wh_count.bit_length()
        hot_per_wh = p.hot_blocks_per_warehouse
        cold_per_wh = p.cold_blocks_per_warehouse
        cold_bits = cold_per_wh.bit_length()
        lines_per_block = p.lines_per_block
        line_bits = lines_per_block.bit_length()
        private_base = _PRIVATE_BASE + client * (p.private_lines * 2) * _LINE
        # Generation pass: pack (address << 2) | write << 1 | shared.
        run: list[int] = []
        append = run.append
        for _ in range(count):
            if recent and rand() < revisit_prob:
                size = len(recent)
                size_bits = size.bit_length()
                pick = getrandbits(size_bits)
                while pick >= size:
                    pick = getrandbits(size_bits)
                append(recent[pick] << 2)
                continue
            u = rand()
            if u < p_hot:
                address = _HOT_BASE + bisect_left(hot_cdf, rand()) * _LINE
                append((address << 2)
                       | (2 if rand() < hot_write_prob else 0) | 1)
            elif u < p_hot_warm:
                address = _WARM_BASE + bisect_left(warm_cdf, rand()) * _LINE
                append((address << 2)
                       | (2 if rand() < warm_write_prob else 0) | 1)
            elif u < p_hot_warm_block:
                warehouse = getrandbits(wh_bits)
                while warehouse >= wh_count:
                    warehouse = getrandbits(wh_bits)
                if rand() < hot_block_prob:
                    block_id = (warehouse * hot_per_wh
                                + bisect_left(hot_block_cdf, rand()))
                    region = 0
                else:
                    block = getrandbits(cold_bits)
                    while block >= cold_per_wh:
                        block = getrandbits(cold_bits)
                    block_id = warehouse * cold_per_wh + block
                    region = 1 << 38   # cold blocks live far from hot
                line = getrandbits(line_bits)
                while line >= lines_per_block:
                    line = getrandbits(line_bits)
                address = (_BLOCK_BASE + region
                           + (block_id * lines_per_block + line) * _LINE)
                append((address << 2)
                       | (2 if rand() < block_write_prob else 0))
                recent.append(address)
                if len(recent) > 24:
                    recent.pop(0)
            else:
                address = (private_base
                           + bisect_left(private_cdf, rand()) * _LINE)
                append((address << 2)
                       | (2 if rand() < private_write_prob else 0))
        if run:
            self.smp.access_run(cpu, run, False)

    def _user_code_segment(self, cpu: int, count: int) -> None:
        rand = self._rng.random
        cdf = self._user_code_cdf
        run = [_USER_CODE_BASE + bisect_left(cdf, rand()) * _CODE_LINE
               for _ in range(count)]
        if run:
            self.smp.fetch_run(cpu, run, False)

    def _branches(self, cpu: int, count: int) -> None:
        rand = self._rng.random
        cdf = self._user_code_cdf
        run: list[int] = []
        append = run.append
        for _ in range(count):
            site = bisect_left(cdf, rand())
            # Per-site taken bias, stable across the run: mostly strongly
            # biased branches with a hard-to-predict minority, as in real
            # integer code.
            bucket = (site * 2654435761) % 20
            if bucket < 12:
                taken_prob = 0.97
            elif bucket < 15:
                taken_prob = 0.03
            elif bucket < 19:
                taken_prob = 0.88
            else:
                taken_prob = 0.55
            append((site << 1) | (1 if rand() < taken_prob else 0))
        if run:
            self.smp.branch_run(cpu, run, False)

    def _kernel_burst(self, cpu: int, refs: int, slab_refs: int = 0,
                      task_client: int | None = None) -> None:
        p = self.params
        rng = self._rng
        rand = rng.random
        kernel_cdf = self._kernel_cdf
        run: list[int] = []
        append = run.append
        for _ in range(refs):
            address = (_KERNEL_DATA_BASE
                       + bisect_left(kernel_cdf, rand()) * _LINE)
            append((address << 2) | (2 if rand() < 0.3 else 0))
        for _ in range(slab_refs):
            # Recycled per-request slab objects: hit when recently reused.
            self._slab_seq += 1
            line = self._slab_seq % p.os_slab_pool_lines
            append(((_KERNEL_COLD_BASE + line * _LINE) << 2) | 2)
        if task_client is not None:
            base = (_KERNEL_TASK_BASE
                    + task_client * p.os_task_lines_per_client * _LINE)
            for _ in range(p.os_task_refs_per_cs):
                offset = rng.randrange(p.os_task_lines_per_client)
                append(((base + offset * _LINE) << 2)
                       | (2 if rand() < 0.4 else 0))
        if run:
            self.smp.access_run(cpu, run, True)
        kernel_code_cdf = self._kernel_code_cdf
        code_run = [
            _KERNEL_CODE_BASE + bisect_left(kernel_code_cdf, rand()) * _CODE_LINE
            for _ in range(p.os_code_refs_per_burst)]
        if code_run:
            self.smp.fetch_run(cpu, code_run, True)

    # -- driving ------------------------------------------------------------

    def run_transaction(self, cpu: int, client: int) -> None:
        """Simulate one transaction's reference stream on ``cpu``."""
        p = self.params
        rng = self._rng
        profile = self.profile
        self._recent = []
        reads = _poisson(rng, profile.reads_per_txn)
        switches = _poisson(rng, profile.context_switches_per_txn)
        # Split the user work into segments separated by I/O waits; each
        # I/O produces a kernel burst and each switch flushes the DTLB.
        segments = max(1, reads + 1)
        user_refs_left = p.user_refs_per_txn
        code_refs_left = p.code_refs_per_txn
        branches_left = p.branches_per_txn
        switches_left = switches
        for segment in range(segments):
            share = user_refs_left // (segments - segment)
            code_share = code_refs_left // (segments - segment)
            branch_share = branches_left // (segments - segment)
            self._user_data_segment(cpu, client, share)
            self._user_code_segment(cpu, code_share)
            self._branches(cpu, branch_share)
            user_refs_left -= share
            code_refs_left -= code_share
            branches_left -= branch_share
            if segment < reads:
                next_client = rng.randrange(profile.clients)
                self._kernel_burst(cpu, p.os_refs_per_io,
                                   slab_refs=p.os_slab_refs_per_io,
                                   task_client=next_client
                                   if switches_left > 0 else None)
                if switches_left > 0:
                    self.smp.context_switch(cpu)
                    switches_left -= 1
        self._kernel_burst(cpu, p.os_base_refs)
        for _ in range(switches_left):
            # Contention-driven switches (lock waits): scheduler work, the
            # incoming process's task state, and the contended wait-queue
            # structures, which bounce between CPUs.
            self._kernel_burst(cpu, p.os_refs_per_cs,
                               task_client=rng.randrange(profile.clients))
            for _ in range(p.os_sync_refs_per_cs):
                address = (_KERNEL_SYNC_BASE
                           + rng.randrange(p.os_sync_lines) * _LINE)
                self.smp.data_access(cpu, address, write=rng.random() < 0.5,
                                     kernel=True, shared=True)
            self.smp.context_switch(cpu)
        self._txns_run += 1

    def run(self, transactions: int, warmup: int = 0) -> MicroarchRates:
        """Run ``transactions`` transactions round-robin over clients.

        Clients stay on their home CPU (run-queue affinity), so each
        CPU's private footprint is ``clients / P`` — this keeps MPI
        comparable across processor counts, as the paper observes
        (Section 5.2).  ``warmup`` transactions run first and their
        counts are discarded, mirroring the paper's 20-minute warm-up.
        """
        profile = self.profile
        for index in range(warmup):
            client = index % profile.clients
            self.run_transaction(client % profile.processors, client)
        self._reset_counts()
        for index in range(transactions):
            client = index % profile.clients
            self.run_transaction(client % profile.processors, client)
        return self.rates()

    def _reset_counts(self) -> None:
        for hierarchy in self.smp.cpus:
            hierarchy.counts = HierarchyCounts()
        directory = self.smp.directory
        directory.invalidations = 0
        directory.interventions = 0
        directory.coherence_misses = 0

    def counts(self) -> HierarchyCounts:
        """Raw merged event counts (for the EMON layer)."""
        return self.smp.merged_counts()

    def rates(self) -> MicroarchRates:
        """Convert simulated counts into per-instruction event rates."""
        p = self.params
        counts = self.smp.merged_counts()
        data = counts.data_refs
        code = counts.code_refs

        def ratio(part: float, whole: float) -> float:
            return part / whole if whole else 0.0

        user_density = p.l2_ref_density
        os_density = p.l2_ref_density * p.os_ref_boost
        user_ipx = self.profile.user_ipx
        os_ipx = self.profile.os_ipx
        total_ipx = user_ipx + os_ipx

        user_l3_mpi = ratio(counts.l3_misses.user, data.user) * user_density
        os_l3_mpi = ratio(counts.l3_misses.kernel, data.kernel) * os_density
        l3_mpi = ((user_l3_mpi * user_ipx + os_l3_mpi * os_ipx) / total_ipx
                  if total_ipx else 0.0)

        # Code fills that miss in L2/L3 are counted in the same l2/l3
        # counters by fetch(), so they ride along with the data ratios;
        # code traffic is a small share of unified-cache misses here.
        user_l2_mpi = ratio(counts.l2_misses.user, data.user) * user_density
        os_l2_mpi = ratio(counts.l2_misses.kernel, data.kernel) * os_density
        l2_mpi = ((user_l2_mpi * user_ipx + os_l2_mpi * os_ipx) / total_ipx
                  if total_ipx else 0.0)

        tc_rate = ratio(counts.tc_misses.total, code.total) * p.code_ref_density
        tlb_rate = ratio(counts.tlb_misses.total, data.total) * p.tlb_ref_density
        mispredict_rate = (ratio(counts.mispredicts.total, counts.branches.total)
                           * p.branch_density)

        rates = MicroarchRates(
            mispredicts_per_instr=mispredict_rate,
            tlb_misses_per_instr=tlb_rate,
            tc_misses_per_instr=tc_rate,
            l2_misses_per_instr=max(l2_mpi, l3_mpi),
            l3_misses_per_instr=l3_mpi,
            user_l3_mpi=user_l3_mpi,
            os_l3_mpi=os_l3_mpi,
            l3_writeback_ratio=ratio(counts.l3_writebacks.total,
                                     counts.l3_misses.total),
            coherence_miss_fraction=ratio(counts.coherence_misses.total,
                                          counts.l3_misses.total),
            l3_miss_ratio=ratio(counts.l3_misses.total, counts.l2_misses.total),
        )
        rates.validate()
        return rates


def _poisson(rng, mean: float) -> int:
    """Small-mean Poisson sample (Knuth's method; mean is O(10) here)."""
    if mean <= 0:
        return 0
    threshold = math.exp(-mean)
    count = 0
    product = rng.random()
    while product > threshold:
        count += 1
        product *= rng.random()
    return count
