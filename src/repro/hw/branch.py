"""Branch predictor model.

A bimodal predictor: a table of 2-bit saturating counters indexed by
branch PC.  The paper observes that the branch component of CPI is nearly
flat across workload scaling (Figure 12); in this model that emerges
because the branch working set (database code) does not change with the
number of warehouses — only context-switch-induced state loss perturbs
it, and only slightly.
"""

from __future__ import annotations


# 2-bit saturating counter states.
_STRONG_NOT_TAKEN, _WEAK_NOT_TAKEN, _WEAK_TAKEN, _STRONG_TAKEN = range(4)


class BimodalPredictor:
    """A table of 2-bit saturating counters indexed by PC."""

    def __init__(self, table_size: int = 4096):
        if table_size <= 0:
            raise ValueError("predictor table size must be positive")
        self.table_size = table_size
        self._table = [_WEAK_TAKEN] * table_size
        self.predictions = 0
        self.mispredictions = 0

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        """Predict branch at ``pc``, train on the outcome; True if correct."""
        index = pc % self.table_size
        state = self._table[index]
        predicted_taken = state >= _WEAK_TAKEN
        correct = predicted_taken == taken
        self.predictions += 1
        if not correct:
            self.mispredictions += 1
        if taken:
            if state < _STRONG_TAKEN:
                self._table[index] = state + 1
        else:
            if state > _STRONG_NOT_TAKEN:
                self._table[index] = state - 1
        return correct

    def flush(self) -> None:
        """Reset all counters to weakly taken (context-switch state loss)."""
        self._table = [_WEAK_TAKEN] * self.table_size

    @property
    def misprediction_rate(self) -> float:
        """Mispredictions / predictions (0 when never used)."""
        if not self.predictions:
            return 0.0
        return self.mispredictions / self.predictions

    def reset_stats(self) -> None:
        """Zero the prediction counters (tables are kept)."""
        self.predictions = 0
        self.mispredictions = 0
