"""Machine configurations.

Two presets mirror the paper's testbeds:

- :data:`XEON_MP_QUAD` — the primary machine: 4-way Intel Xeon MP at
  1.6 GHz, trace cache + 256 KB L2 + 1 MB L3, 4 GB memory (1 GB reserved
  for the OS), 26 Ultra320 disks (Section 3.3).
- :data:`ITANIUM2_QUAD` — the validation machine of Section 6.3: 3 MB L3,
  ~50% more bus bandwidth, 16 GB memory, 34 disks.

Stall costs reproduce Table 3 exactly; they are what the CPI
decomposition of Table 4 multiplies against event rates.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level."""

    name: str
    size_bytes: int
    line_bytes: int
    associativity: int

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.line_bytes <= 0 or self.associativity <= 0:
            raise ValueError(f"{self.name}: cache dimensions must be positive")
        if not _is_power_of_two(self.line_bytes):
            raise ValueError(f"{self.name}: line size must be a power of two")
        if self.size_bytes % (self.line_bytes * self.associativity) != 0:
            raise ValueError(
                f"{self.name}: size {self.size_bytes} is not divisible into "
                f"{self.associativity}-way sets of {self.line_bytes}B lines")

    @property
    def total_lines(self) -> int:
        """Line count of the cache (capacity / line size)."""
        return self.size_bytes // self.line_bytes

    @property
    def num_sets(self) -> int:
        """Set count of the cache (lines / associativity)."""
        return self.total_lines // self.associativity


@dataclass(frozen=True)
class TlbConfig:
    """Geometry of the data TLB."""

    entries: int
    associativity: int
    page_bytes: int = 4096

    def __post_init__(self) -> None:
        if self.entries <= 0 or self.associativity <= 0:
            raise ValueError("TLB dimensions must be positive")
        if self.entries % self.associativity != 0:
            raise ValueError("TLB entries must divide into ways")
        if not _is_power_of_two(self.page_bytes):
            raise ValueError("page size must be a power of two")


@dataclass(frozen=True)
class BusConfig:
    """Front-side bus parameters for the IOQ queueing model.

    ``base_transaction_cycles`` is the unloaded time for a bus transaction
    to complete once it enters the IOQ — the paper measures 102 cycles on
    the 1P Xeon (Table 3).  ``occupancy_cycles`` is how long one
    transaction holds the shared bus (the data-phase occupancy); it sets
    the bandwidth ceiling and hence the utilization for a given miss rate.
    ``max_utilization`` caps the queueing model short of its singularity.
    """

    base_transaction_cycles: float = 102.0
    occupancy_cycles: float = 24.0
    max_utilization: float = 0.95
    #: Multiplier on the M/G/1 queueing delay capturing snoop/arbitration
    #: overhead beyond pure data-phase serialization.
    queue_weight: float = 1.8

    def __post_init__(self) -> None:
        if self.base_transaction_cycles <= 0 or self.occupancy_cycles <= 0:
            raise ValueError("bus timing parameters must be positive")
        if not 0.0 < self.max_utilization < 1.0:
            raise ValueError("max_utilization must be in (0, 1)")
        if self.queue_weight < 0:
            raise ValueError("queue_weight must be >= 0")


@dataclass(frozen=True)
class DiskConfig:
    """Disk subsystem parameters."""

    count: int = 26
    service_time_s: float = 0.0045
    service_time_cv: float = 0.35
    capacity_bytes: int = 73 * 10**9

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ValueError("disk count must be positive")
        if self.service_time_s <= 0:
            raise ValueError("disk service time must be positive")


@dataclass(frozen=True)
class StallCosts:
    """Fixed per-event CPU stall cycles — Table 3 of the paper.

    The L3 cost here is the *unloaded* miss latency; the CPI model adds
    the bus-transaction time in excess of the 1P baseline (Table 4's
    ``L3 Miss * (300 + Bus-Transaction Time - Bus-Transaction Time for
    1P)`` term).
    """

    instruction: float = 0.5
    branch_mispredict: float = 20.0
    tlb_miss: float = 20.0
    tc_miss: float = 20.0
    l2_miss: float = 16.0
    l3_miss: float = 300.0


@dataclass(frozen=True)
class MachineConfig:
    """A complete machine: CPU geometry, stall costs, bus, disks, memory."""

    name: str
    frequency_hz: float
    max_processors: int
    tc: CacheConfig
    l2: CacheConfig
    l3: CacheConfig
    dtlb: TlbConfig
    costs: StallCosts
    bus: BusConfig
    disks: DiskConfig
    memory_bytes: int
    os_reserved_bytes: int
    #: CPI the core achieves on an L3-resident instruction stream over and
    #: above the Table 3 computed components ("Other" floor).
    other_cpi: float = 0.35

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        if self.max_processors <= 0:
            raise ValueError("max_processors must be positive")
        if self.os_reserved_bytes >= self.memory_bytes:
            raise ValueError("OS reservation exceeds physical memory")

    @property
    def sga_bytes(self) -> int:
        """Memory available to the database's System Global Area."""
        return self.memory_bytes - self.os_reserved_bytes

    def with_l3_size(self, size_bytes: int) -> "MachineConfig":
        """A copy with a different L3 capacity (ablation A1)."""
        return replace(self, name=f"{self.name}/l3={size_bytes // 1024}KB",
                       l3=replace(self.l3, size_bytes=size_bytes))

    def with_disks(self, count: int) -> "MachineConfig":
        """A copy with a different disk count (ablation A2)."""
        return replace(self, name=f"{self.name}/disks={count}",
                       disks=replace(self.disks, count=count))

    def with_processors(self, max_processors: int) -> "MachineConfig":
        """A copy allowing a different processor ceiling."""
        return replace(self, max_processors=max_processors)


GIB = 1024**3

#: The paper's primary testbed (Section 3.3): 4-way Intel Xeon MP,
#: 1.6 GHz, trace cache / 256 KB L2 / 1 MB L3, 4 GB PC200 DDR of which
#: 1 GB is reserved for Linux, 26 Ultra320 SCSI disks.
XEON_MP_QUAD = MachineConfig(
    name="xeon-mp-quad",
    frequency_hz=1.6e9,
    max_processors=4,
    # The execution trace cache holds ~12K uops; modeled as a 96 KB
    # code-only cache with 64 B lines.
    tc=CacheConfig("TC", size_bytes=96 * 1024, line_bytes=64, associativity=8),
    l2=CacheConfig("L2", size_bytes=256 * 1024, line_bytes=128, associativity=8),
    l3=CacheConfig("L3", size_bytes=1024 * 1024, line_bytes=128, associativity=8),
    dtlb=TlbConfig(entries=64, associativity=64),
    costs=StallCosts(),
    bus=BusConfig(base_transaction_cycles=102.0, occupancy_cycles=60.0),
    disks=DiskConfig(count=26),
    memory_bytes=4 * GIB,
    os_reserved_bytes=1 * GIB,
)

#: The Section 6.3 validation machine: Quad Itanium2, 3 MB L3, about 50%
#: more bus bandwidth, 16 GB memory, 34 disks.  Stall costs are kept
#: identical to the Xeon so that machine geometry is the *only* thing
#: that differs between Figure 9 and Figure 19 (see DESIGN.md §5).
ITANIUM2_QUAD = MachineConfig(
    name="itanium2-quad",
    frequency_hz=1.5e9,
    max_processors=4,
    tc=CacheConfig("TC", size_bytes=96 * 1024, line_bytes=64, associativity=8),
    l2=CacheConfig("L2", size_bytes=256 * 1024, line_bytes=128, associativity=8),
    l3=CacheConfig("L3", size_bytes=3 * 1024 * 1024, line_bytes=128,
                   associativity=12),
    dtlb=TlbConfig(entries=128, associativity=128),
    costs=StallCosts(),
    # ~50% more bus bandwidth -> each transaction occupies the bus for
    # two-thirds the cycles.
    bus=BusConfig(base_transaction_cycles=102.0, occupancy_cycles=40.0),
    disks=DiskConfig(count=34),
    memory_bytes=16 * GIB,
    os_reserved_bytes=1 * GIB,
)

_MACHINES = {m.name: m for m in (XEON_MP_QUAD, ITANIUM2_QUAD)}


def machine_by_name(name: str) -> MachineConfig:
    """Look up a preset machine configuration."""
    try:
        return _MACHINES[name]
    except KeyError:
        known = ", ".join(sorted(_MACHINES))
        raise KeyError(f"unknown machine {name!r}; known machines: {known}")
