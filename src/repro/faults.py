"""Declarative fault injection for the simulated testbed.

The paper measures a *healthy* Xeon server; this module lets the same
testbed be exercised on a degraded substrate, in the spirit of "OLTP on
Hardware Islands": OLTP behavior shifts qualitatively when the hardware
under it changes, so a scaling methodology should be checked against a
less-than-perfect machine too.

A :class:`FaultPlan` is a pure-data description of every fault to
inject.  It is

- **deterministic** — every stochastic fault decision draws from a
  named stream derived from ``plan.seed``, independent of the workload
  streams, so the same plan over the same configuration reproduces the
  same run bit-for-bit;
- **serializable** — plans round-trip through JSON (``to_json`` /
  ``from_json``) so the CLI can load them with ``--faults plan.json``;
- **strictly opt-in** — with no plan installed, no fault code runs, no
  fault stream is created, and every baseline number is unchanged.

Fault models:

- :class:`DiskDegradation` — per-disk (or array-wide) service-time
  inflation plus hard outage windows during which the disk serves
  nothing and its queue grows (``osmodel.disks``);
- :class:`LogStall` — wall-clock windows during which the log writer
  cannot flush, so group-commit waits balloon (``db.redo``);
- :class:`LockStorm` — a background process that repeatedly grabs the
  hot warehouse/district rows and sits on them, manufacturing the
  paper's "database block contention" on demand (``db.locks``);
- :class:`TransientAborts` — seeded transaction aborts at commit time
  (deadlock victims, ORA-style transient errors); clients retry with
  capped exponential backoff per :class:`RetryPolicy`
  (``odb.client``).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional


def _check_windows(windows: tuple[tuple[float, float], ...],
                   what: str) -> None:
    for start, end in windows:
        if start < 0 or end <= start:
            raise ValueError(
                f"{what} window must satisfy 0 <= start < end, "
                f"got ({start}, {end})")


@dataclass(frozen=True)
class DiskDegradation:
    """Degrade one data disk (or the whole array with ``disk=-1``).

    ``latency_factor`` multiplies the lognormal service time of every
    request the disk serves; ``outages`` are simulated-time windows
    during which the disk serves nothing at all — requests already at
    the head of its queue wait for the window to close.
    """

    #: Data-disk index, or -1 to target every data disk.
    disk: int = -1
    latency_factor: float = 1.0
    outages: tuple[tuple[float, float], ...] = ()

    def __post_init__(self) -> None:
        if self.disk < -1:
            raise ValueError("disk must be a data-disk index or -1 (all)")
        if self.latency_factor < 1.0:
            raise ValueError("latency_factor must be >= 1 (degradation)")
        object.__setattr__(self, "outages",
                           tuple(tuple(w) for w in self.outages))
        _check_windows(self.outages, "outage")


@dataclass(frozen=True)
class LogStall:
    """Windows during which the log writer cannot complete a flush."""

    windows: tuple[tuple[float, float], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "windows",
                           tuple(tuple(w) for w in self.windows))
        _check_windows(self.windows, "log-stall")


@dataclass(frozen=True)
class LockStorm:
    """Periodic hostile holder of the hot warehouse/district rows.

    From ``start_s`` for ``duration_s``, a background process picks
    ``warehouses_per_burst`` warehouses, takes their warehouse and
    district row locks (in the same global order the clients use, so no
    deadlock is possible), holds them ``hold_s``, releases, and sleeps
    ``interval_s`` before the next burst.
    """

    start_s: float = 0.0
    duration_s: float = 1.0
    warehouses_per_burst: int = 1
    hold_s: float = 0.05
    interval_s: float = 0.05

    def __post_init__(self) -> None:
        if self.start_s < 0 or self.duration_s <= 0:
            raise ValueError("storm needs start_s >= 0 and duration_s > 0")
        if self.warehouses_per_burst <= 0:
            raise ValueError("warehouses_per_burst must be positive")
        if self.hold_s <= 0 or self.interval_s < 0:
            raise ValueError("hold_s must be > 0 and interval_s >= 0")


@dataclass(frozen=True)
class TransientAborts:
    """Seeded transient aborts decided at commit time.

    ``probability`` is the per-transaction base chance; the effective
    chance is scaled by the transaction profile's write footprint (see
    :func:`repro.odb.transactions.abort_weight`), so write-heavy
    transactions — the plausible deadlock victims — abort more often.
    """

    probability: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("abort probability must be in [0, 1]")


@dataclass(frozen=True)
class RetryPolicy:
    """Client-side retry of transiently aborted transactions."""

    base_backoff_s: float = 0.005
    multiplier: float = 2.0
    max_backoff_s: float = 0.080
    max_attempts: int = 8

    def __post_init__(self) -> None:
        if self.base_backoff_s < 0 or self.max_backoff_s < self.base_backoff_s:
            raise ValueError(
                "need 0 <= base_backoff_s <= max_backoff_s")
        if self.multiplier < 1.0:
            raise ValueError("backoff multiplier must be >= 1")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")

    def backoff_s(self, attempt: int) -> float:
        """Deterministic backoff before retry number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        return min(self.max_backoff_s,
                   self.base_backoff_s * self.multiplier ** (attempt - 1))


@dataclass(frozen=True)
class FaultPlan:
    """Everything to inject into one run, as pure data."""

    seed: int = 1
    disks: tuple[DiskDegradation, ...] = ()
    log_stalls: tuple[LogStall, ...] = ()
    lock_storms: tuple[LockStorm, ...] = ()
    aborts: Optional[TransientAborts] = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    def __post_init__(self) -> None:
        object.__setattr__(self, "disks", tuple(self.disks))
        object.__setattr__(self, "log_stalls", tuple(self.log_stalls))
        object.__setattr__(self, "lock_storms", tuple(self.lock_storms))

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-dict form, ready for JSON serialization."""
        return {
            "seed": self.seed,
            "disks": [dataclasses.asdict(d) for d in self.disks],
            "log_stalls": [dataclasses.asdict(s) for s in self.log_stalls],
            "lock_storms": [dataclasses.asdict(s) for s in self.lock_storms],
            "aborts": (dataclasses.asdict(self.aborts)
                       if self.aborts is not None else None),
            "retry": dataclasses.asdict(self.retry),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        """Rebuild a plan from its :meth:`to_dict` payload."""
        def windows(raw):
            return tuple(tuple(w) for w in raw)

        return cls(
            seed=data.get("seed", 1),
            disks=tuple(
                DiskDegradation(disk=d["disk"],
                                latency_factor=d["latency_factor"],
                                outages=windows(d.get("outages", ())))
                for d in data.get("disks", ())),
            log_stalls=tuple(
                LogStall(windows=windows(s.get("windows", ())))
                for s in data.get("log_stalls", ())),
            lock_storms=tuple(
                LockStorm(**s) for s in data.get("lock_storms", ())),
            aborts=(TransientAborts(**data["aborts"])
                    if data.get("aborts") else None),
            retry=(RetryPolicy(**data["retry"])
                   if data.get("retry") else RetryPolicy()),
        )

    def to_json(self, indent: int = 2) -> str:
        """JSON text form (stable key order)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Parse a plan from JSON text."""
        return cls.from_dict(json.loads(text))

    @classmethod
    def load(cls, path: Path | str) -> "FaultPlan":
        """Read a plan from a JSON file on disk."""
        return cls.from_json(Path(path).read_text(encoding="utf-8"))

    def fingerprint(self) -> str:
        """Short stable hash for cache keys — faulted results must not
        collide with healthy ones."""
        canonical = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.blake2b(canonical.encode(), digest_size=6).hexdigest()

    # -- convenience queries -------------------------------------------------

    @property
    def injects_anything(self) -> bool:
        """Whether the plan perturbs the run at all."""
        return bool(self.disks or self.log_stalls or self.lock_storms
                    or (self.aborts is not None
                        and self.aborts.probability > 0))


# -- runtime models ----------------------------------------------------------


class DiskFaultModel:
    """Resolved per-disk degradation state for one :class:`DiskArray`.

    Answers two questions the array asks while serving a request on data
    disk ``index`` at simulated time ``now``: by how much is service
    inflated, and how long must the disk sit out an outage first.
    """

    def __init__(self, plan: FaultPlan, data_disk_count: int):
        self._factors = [1.0] * data_disk_count
        self._outages: list[list[tuple[float, float]]] = [
            [] for _ in range(data_disk_count)]
        for spec in plan.disks:
            targets = (range(data_disk_count) if spec.disk == -1
                       else [spec.disk])
            for index in targets:
                if not 0 <= index < data_disk_count:
                    raise ValueError(
                        f"disk index {index} out of range "
                        f"(array has {data_disk_count} data disks)")
                self._factors[index] *= spec.latency_factor
                self._outages[index].extend(spec.outages)
        for windows in self._outages:
            windows.sort()

    def latency_factor(self, index: int) -> float:
        """Current service-time multiplier for disk ``index``."""
        return self._factors[index]

    def outage_wait_s(self, index: int, now: float) -> float:
        """Seconds until the disk may serve again (0 when healthy)."""
        for start, end in self._outages[index]:
            if start <= now < end:
                return end - now
            if start > now:
                break
        return 0.0


def stall_wait_s(stalls: tuple[LogStall, ...], now: float) -> float:
    """Seconds until every log-stall window covering ``now`` has closed."""
    wait = 0.0
    for stall in stalls:
        for start, end in stall.windows:
            if start <= now < end:
                wait = max(wait, end - now)
    return wait


def lock_storm_process(engine, lock_table, storm: LockStorm,
                       warehouses: int, rng, storm_index: int = 0):
    """Background hostile holder of hot rows (a simulation process).

    Acquires the warehouse and district row locks of a few warehouses in
    the same global order the clients use — ``("wh", w)`` before
    ``("dist", w)``, warehouses ascending — so the no-deadlock invariant
    of ordered acquisition holds against both clients and other storms.

    ``lock_table`` is duck-typed (``acquire_many`` / ``release_all``) so
    this module stays import-free of the database layer.
    """
    yield engine.timeout(storm.start_s)
    deadline = storm.start_s + storm.duration_s
    burst = 0
    while engine.now < deadline:
        burst += 1
        owner = ("fault-storm", storm_index, burst)
        count = min(storm.warehouses_per_burst, warehouses)
        picks = sorted(rng.sample(range(warehouses), count))
        keys = [key for w in picks for key in (("wh", w), ("dist", w))]
        yield from lock_table.acquire_many(owner, keys)
        yield engine.timeout(storm.hold_s)
        lock_table.release_all(owner)
        if storm.interval_s > 0:
            yield engine.timeout(storm.interval_s)


def publish_fault_metrics(plan: FaultPlan, system_metrics) -> None:
    """Publish one faulted run's injection totals into :mod:`repro.obs.metrics`.

    Called by the runner after a faulted run completes (and only when
    the metrics registry is active): counts the faulted run, the fault
    mechanisms the plan armed, and the observed abort/retry volume —
    totals the simulation already computed, so publishing can never
    perturb a result.  ``system_metrics`` is the run's
    :class:`~repro.odb.system.SystemMetrics`.
    """
    from repro.obs import metrics as _metrics

    if not _metrics.ACTIVE:
        return
    _metrics.inc("faults.runs")
    _metrics.inc("faults.disk_degradations", len(plan.disks))
    _metrics.inc("faults.log_stalls", len(plan.log_stalls))
    _metrics.inc("faults.lock_storms", len(plan.lock_storms))
    transactions = getattr(system_metrics, "transactions", 0)
    _metrics.inc("faults.aborts",
                 system_metrics.aborts_per_txn * transactions)
    _metrics.inc("faults.retries",
                 system_metrics.retries_per_txn * transactions)
