"""Command-line interface.

::

    python -m repro run -w 200 -p 4          # one configuration
    python -m repro run -w 200 --faults plan.json   # ... on degraded hardware
    python -m repro sweep -p 4 --chart       # warehouse sweep (+ ASCII plot)
    python -m repro sweep -p 4 --resume      # checkpointed (kill-safe) sweep
    python -m repro sweep -p 4 --workers 3   # distributed sweep over fabric workers
    python -m repro sweep -p 4 --workers 3 --bind 0.0.0.0:7461 \\
        --fabric-secret secret.txt           # multi-host sweep (remote workers)
    python -m repro fabric-worker --connect host:7461 --fabric-secret secret.txt
    python -m repro pivot -p 4 --metric cpi  # two-region fit and pivot
    python -m repro table1                   # the 90%-utilization search
    python -m repro variability -w 100 -p 4  # multi-seed error bars
    python -m repro report -w 100 -p 4       # traced run -> dashboard
    python -m repro report --sweep -p 4      # traced sweep -> one report
    python -m repro trace export -p 4 --grid 10,100   # Chrome trace JSON
    python -m repro trace validate t.json    # trace_event schema check
    python -m repro sweep -p 4 --snapshot base.json  # freeze a sweep
    python -m repro diff base.json cand.json # compare two sweeps
    python -m repro diff --workload odb-standard --workload banking
    python -m repro workload list            # shipped scenario library
    python -m repro workload show banking    # one scenario, spelled out
    python -m repro workload validate [spec.yaml ...]  # spec validation
    python -m repro docs regen [--check]     # regenerate doc blocks
    python -m repro clear-cache              # drop cached sweep results

``--fast`` trades fidelity for speed on any simulating command (the
same settings the test suite uses).  ``--faults plan.json`` injects a
:class:`repro.faults.FaultPlan` (degraded disks, log stalls, lock
storms, transient aborts) into ``run``, ``sweep``, and ``report``.
``--workload <name|path>`` selects a declarative workload
(:mod:`repro.workload`; a shipped scenario name or a YAML/JSON spec
file) on every simulating command — specs are provenance-tracked
through cache keys and run manifests, and ``odb-standard`` is
bit-identical to the default.  See ``docs/WORKLOADS.md`` for the
authoring guide.
``--jobs N`` fans independent configuration runs across ``N`` worker
processes (default: one per CPU; results are bit-identical to serial,
see DESIGN.md §8); ``REPRO_SERIAL=1`` forces serial execution.
``--shards N``, ``--retries N``, and ``--point-timeout S`` (on
``sweep`` and ``report --sweep``) opt into the supervised sharded
executor (:mod:`repro.experiments.supervisor`): per-point retry with
deterministic backoff, pool self-healing on worker death, and shard
failover, with the degradation timeline surfaced in sweep reports
(DESIGN.md §11).  ``--workers N`` (on ``sweep``) distributes the sweep
across ``N`` fabric worker processes over ``--transport`` stdio pipes
or TCP sockets (:mod:`repro.fabric`): time-bounded leases, heartbeat
liveness, idempotent journal appends, and graceful fallback to the
local executor when the fleet is lost (DESIGN.md §12).  ``--bind
HOST:PORT`` turns the coordinator multi-host: no local fleet is
spawned, and remote hosts join with ``repro fabric-worker --connect
HOST:PORT`` (reconnecting with deterministic backoff if the channel
drops).  ``--fabric-secret PATH`` (or ``REPRO_FABRIC_SECRET``) enables
HMAC-SHA256 authenticated framing on both ends; forged or replayed
frames are rejected without failing the sweep (DESIGN.md §16).

``report`` runs one configuration with tracing enabled
(:mod:`repro.obs`) and writes a Markdown (optionally HTML) dashboard —
run manifest, result summary, fixed-point convergence trajectory,
phase timings, counter provenance, and the fault/retry timeline when
``--faults`` is active — into ``results/reports/``.  ``report
--sweep`` runs a telemetry sweep instead and aggregates every point's
manifest/trace/metrics into one sweep dashboard (per-point cost, cache
provenance, convergence trajectories, sweep-wide flame table).
``trace export`` writes the same telemetry sweep as Chrome
``trace_event`` JSON (one track per point) for Perfetto /
``chrome://tracing``; ``trace validate`` checks a trace file against
the schema.  Set ``REPRO_METRICS_PATH=events.jsonl`` to stream
run-started/round-completed/run-finished records live from any
simulating command.
``sweep --snapshot PATH`` (and ``report --sweep --snapshot PATH``)
freezes the sweep as a schema-versioned, deterministic
:class:`~repro.obs.snapshot.SweepSnapshot`; ``diff`` compares two of
them — or sweep journals, result-cache directories, or two
``--workload`` scenarios swept on the spot — into a Markdown/HTML
dashboard of per-point metric deltas classified under a threshold
policy (``--thresholds``), with ``--fail-on-regress`` exiting 3 on any
regressed cell so CI can gate on it (DESIGN.md §15).
``docs regen`` regenerates the generated blocks of EXPERIMENTS.md and
results/README.md from the committed ``results/*.txt`` artifacts;
``--check`` fails (exit 1) on drift, which CI runs as the doc-drift
gate.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.core.pivot import pivot_point, representative_configuration
from repro.experiments.charts import render_chart
from repro.experiments.configs import (
    DEFAULT_SETTINGS,
    FAST_SETTINGS,
    FULL_WAREHOUSE_GRID,
    RunnerSettings,
)
from repro.experiments.parallel import sweep_parallel
from repro.experiments.report import render_series, render_table
from repro.experiments.resilience import JournalOwnershipError, SweepJournal
from repro.experiments.runner import (
    default_cache,
    run_configuration,
    settings_fingerprint,
)
from repro.faults import FaultPlan
from repro.hw.machine import XEON_MP_QUAD, machine_by_name


def _settings(args) -> RunnerSettings:
    return FAST_SETTINGS if args.fast else DEFAULT_SETTINGS


def _machine(args):
    return machine_by_name(args.machine)


def _faults(args) -> Optional[FaultPlan]:
    if not getattr(args, "faults", None):
        return None
    try:
        return FaultPlan.load(args.faults)
    except (OSError, ValueError, KeyError, TypeError) as error:
        raise SystemExit(f"cannot load fault plan {args.faults!r}: {error}")


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--machine", default=XEON_MP_QUAD.name,
                        help="machine preset (xeon-mp-quad, itanium2-quad)")
    parser.add_argument("--fast", action="store_true",
                        help="reduced-fidelity settings (test speed)")


def _add_faults(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--faults", default=None, metavar="PLAN.json",
                        help="JSON FaultPlan to inject (see repro.faults)")


def _add_workload(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workload", default=None, metavar="NAME|PATH",
                        help="declarative workload: a shipped scenario "
                             "name (repro workload list) or a YAML/JSON "
                             "spec file (docs/WORKLOADS.md)")


def _workload(args):
    """The resolved :class:`~repro.workload.WorkloadSpec`, or ``None``."""
    reference = getattr(args, "workload", None)
    if not reference:
        return None
    from repro.workload import WorkloadSpecError, resolve_workload

    try:
        return resolve_workload(reference)
    except WorkloadSpecError as error:
        raise SystemExit(f"cannot load workload {reference!r}: {error}")


def _add_jobs(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("-j", "--jobs", type=int, default=None, metavar="N",
                        help="worker processes for independent points "
                             "(default: one per CPU; REPRO_SERIAL=1 "
                             "forces serial)")


def _add_supervision(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--shards", type=int, default=None, metavar="N",
                        help="supervised sharded execution across N worker "
                             "pools (retry/backoff, pool self-healing, "
                             "shard failover; see DESIGN.md §11)")
    parser.add_argument("--retries", type=int, default=None, metavar="N",
                        help="per-point retry budget under supervision "
                             "(default 3; implies the supervised executor)")
    parser.add_argument("--point-timeout", type=float, default=None,
                        metavar="S",
                        help="wall-clock budget per point attempt in "
                             "seconds (stragglers are killed and retried; "
                             "implies the supervised executor)")


def _add_fabric(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workers", type=int, default=None, metavar="N",
                        help="distributed execution across N fabric worker "
                             "processes (leases, heartbeats, requeue, "
                             "local fallback; see DESIGN.md §12)")
    parser.add_argument("--transport", choices=("stdio", "tcp"),
                        default="stdio",
                        help="fabric worker transport: stdio subprocess "
                             "pipes (default) or local TCP sockets")
    parser.add_argument("--bind", default=None, metavar="HOST:PORT",
                        help="listen for external fabric workers (repro "
                             "fabric-worker --connect) instead of spawning "
                             "a local fleet; implies --transport tcp")
    parser.add_argument("--fabric-secret", default=None, metavar="PATH",
                        help="file holding the shared secret for "
                             "HMAC-authenticated framing (default: "
                             "$REPRO_FABRIC_SECRET if set)")


def _parse_hostport(text: str, flag: str) -> tuple[str, int]:
    """Validate a ``HOST:PORT`` flag value with single-line errors."""
    host, sep, port_text = text.rpartition(":")
    if not sep or not host:
        raise SystemExit(f"{flag} expects HOST:PORT, got {text!r}")
    try:
        port = int(port_text)
    except ValueError:
        raise SystemExit(f"{flag} port must be an integer, "
                         f"got {port_text!r}")
    if not 0 <= port <= 65535:
        raise SystemExit(f"{flag} port {port} is outside [0, 65535]")
    return host, port


def _fabric_secret(args) -> Optional[str]:
    """The shared fabric secret from flags/env, or None (unsigned)."""
    from repro.fabric import resolve_fabric_secret

    try:
        return resolve_fabric_secret(getattr(args, "fabric_secret", None))
    except ValueError as error:
        raise SystemExit(str(error))


def _fabric_coordinator(args):
    """A :class:`FabricCoordinator` from CLI flags, or None (no fabric).

    ``--workers N`` opts into the distributed fabric executor; it
    shares ``--retries`` with the supervised path and maps
    ``--point-timeout`` onto the lease timeout.  Mutually exclusive
    with ``--shards`` — the fabric already falls back to local sharded
    execution when the fleet is lost.  ``--bind HOST:PORT`` makes the
    coordinator listen for external ``repro fabric-worker`` processes
    (the bound address is printed) instead of spawning a local fleet.
    """
    workers = getattr(args, "workers", None)
    if workers is None:
        return None
    if getattr(args, "shards", None) is not None:
        raise SystemExit("--workers (fabric) and --shards (local "
                         "supervision) are mutually exclusive")
    if workers < 1:
        raise SystemExit("--workers needs a positive worker count")
    from repro.experiments.supervisor import SupervisorPolicy
    from repro.fabric import FabricCoordinator, FabricPolicy

    bind = getattr(args, "bind", None)
    if bind is not None:
        _parse_hostport(bind, "--bind")
    secret = _fabric_secret(args)
    retries = getattr(args, "retries", None)
    timeout = getattr(args, "point_timeout", None)
    policy = SupervisorPolicy(
        max_retries=retries if retries is not None else 3,
        point_timeout_s=timeout)
    transport = "tcp" if bind is not None else args.transport
    fabric = FabricPolicy(workers=workers, transport=transport,
                          lease_timeout_s=timeout, secret=secret,
                          bind=bind)
    coordinator = FabricCoordinator(policy=policy, fabric=fabric)
    if bind is not None:
        try:
            host, port = coordinator.listen().address
        except OSError as error:
            raise SystemExit(f"cannot bind {bind!r}: {error}")
        auth = "authenticated" if secret else "UNAUTHENTICATED"
        print(f"fabric: listening on {host}:{port} ({auth}); workers "
              f"join with `repro fabric-worker --connect {host}:{port}`")
    return coordinator


def _print_fabric_summary(coordinator) -> None:
    """One-line fleet health + degradation summary after a fabric sweep."""
    health = coordinator.worker_health()
    states = ", ".join(f"{h.name}={h.state}({h.completed})"
                       for h in health)
    print(f"fabric: {len(health)} worker(s): {states}")
    reconnects = sum(h.reconnects for h in health)
    revalidated = sum(h.revalidated for h in health)
    auth_rejected = sum(1 for e in coordinator.events
                        if e["event"] == "worker-auth-rejected")
    if reconnects or revalidated or auth_rejected:
        print(f"fabric: {auth_rejected} auth rejection(s), "
              f"{reconnects} reconnect(s), "
              f"{revalidated} lease(s) revalidated")
    degraded = [e for e in coordinator.events
                if e["event"] not in ("fleet-started", "worker-ready",
                                      "worker-accepted", "lease-granted")]
    if degraded:
        kinds = ", ".join(sorted({e["event"] for e in degraded}))
        print(f"fabric: {len(degraded)} degradation event(s) ({kinds})")


def _supervisor(args):
    """A :class:`ShardedSupervisor` from CLI flags, or None (plain path).

    ``--shards``/``--retries``/``--point-timeout`` all opt into the
    supervised executor; shards share the default result cache, and the
    worker budget (``--jobs``) is split evenly across them.
    """
    shards = getattr(args, "shards", None)
    retries = getattr(args, "retries", None)
    timeout = getattr(args, "point_timeout", None)
    if shards is None and retries is None and timeout is None:
        return None
    from repro.experiments.supervisor import (
        ShardedSupervisor,
        SupervisorPolicy,
        default_shards,
    )

    if shards is not None and shards < 1:
        raise SystemExit("--shards needs a positive shard count")
    policy = SupervisorPolicy(
        max_retries=retries if retries is not None else 3,
        point_timeout_s=timeout)
    return ShardedSupervisor(
        shards=default_shards(shards or 1, jobs=args.jobs), policy=policy)


def cmd_run(args) -> int:
    """``repro run``: one configuration, rendered as a small report."""
    faults = _faults(args)
    result = run_configuration(args.warehouses, args.processors,
                               clients=args.clients, machine=_machine(args),
                               settings=_settings(args), faults=faults,
                               workload=_workload(args))
    system = result.system
    rows = [
        ["TPS (measured / iron law)",
         f"{system.tps:.0f} / {result.tps_ironlaw:.0f}"],
        ["CPU utilization", f"{system.cpu_utilization:.1%}"],
        ["user / OS busy split",
         f"{system.user_busy_share:.0%} / {system.os_busy_share:.0%}"],
        ["IPX (user + OS)",
         f"{system.user_ipx / 1e6:.2f}M + {system.os_ipx / 1e6:.2f}M"],
        ["CPI (L3 share)",
         f"{result.cpi.cpi:.2f} ({result.cpi.l3_share:.0%})"],
        ["L3 MPI (per 1000 instr)",
         f"{result.rates.l3_misses_per_instr * 1000:.2f}"],
        ["bus utilization / IOQ cycles",
         f"{result.cpi.bus_utilization:.0%} / "
         f"{result.cpi.bus_transaction_time:.0f}"],
        ["disk reads / writes per txn",
         f"{system.reads_per_txn:.2f} / {system.data_writes_per_txn:.2f}"],
        ["context switches per txn",
         f"{system.context_switches_per_txn:.2f}"],
        ["redo per txn", f"{system.log_bytes_per_txn / 1024:.1f} KB"],
    ]
    if faults is not None:
        rows.append(["aborts / retries per txn",
                     f"{system.aborts_per_txn:.3f} / "
                     f"{system.retries_per_txn:.3f}"])
    print(render_table(
        f"{result.machine}: W={result.warehouses} C={result.clients} "
        f"P={result.processors}", ["metric", "value"], rows))
    return 0


def _parse_grid(text: Optional[str]) -> tuple[int, ...]:
    if not text:
        return FULL_WAREHOUSE_GRID
    try:
        grid = tuple(sorted({int(part) for part in text.split(",")}))
    except ValueError:
        raise SystemExit(f"bad --grid value: {text!r} (want e.g. 10,100,800)")
    if not grid or grid[0] <= 0:
        raise SystemExit("--grid needs positive warehouse counts")
    return grid


def _journal_path(args, faults: Optional[FaultPlan],
                  workload=None) -> Path:
    """Default journal location, keyed like the cache so unrelated sweeps
    never share a checkpoint file."""
    machine = _machine(args)
    slug = "".join(c if c.isalnum() or c in "-." else "_"
                   for c in machine.name)
    name = f"{slug}-p{args.processors}-{settings_fingerprint(_settings(args))}"
    if faults is not None:
        name += f"-f{faults.fingerprint()}"
    if workload is not None:
        name += f"-wl{workload.fingerprint()}"
    root = Path(__file__).resolve().parents[2] / "results" / "sweeps"
    return root / f"{name}.jsonl"


def _snapshot_sweep(args, grid, faults, workload, journal, coordinator):
    """The ``repro sweep --snapshot`` path: telemetry sweep + artifact.

    Snapshots need per-point telemetry (manifests, traces, metrics), so
    this routes through the telemetry executors — fabric when
    ``--workers`` asked for it, supervised when ``--shards`` and
    friends did, the plain pool otherwise — then freezes the sweep as a
    :class:`~repro.obs.snapshot.SweepSnapshot` before returning the
    results for the usual series rendering.
    """
    from repro.experiments.parallel import sweep_telemetry
    from repro.obs.snapshot import SweepSnapshot

    supervisor = None
    if coordinator is not None:
        from repro.experiments.parallel import RunSpec
        from repro.fabric import fabric_run_telemetry

        if journal is not None:
            raise SystemExit("--snapshot with --workers does not support "
                             "--resume/--journal yet")
        specs = [RunSpec(warehouses=w, processors=args.processors,
                         machine=_machine(args), settings=_settings(args),
                         faults=faults, workload=workload)
                 for w in grid]
        points = fabric_run_telemetry(specs, coordinator=coordinator)
        _print_fabric_summary(coordinator)
    else:
        supervisor = _supervisor(args)
        if supervisor is not None and journal is not None:
            raise SystemExit("--snapshot with --shards/--retries/"
                             "--point-timeout does not support "
                             "--resume/--journal yet")
        points = sweep_telemetry(grid, args.processors,
                                 machine=_machine(args),
                                 settings=_settings(args), faults=faults,
                                 jobs=args.jobs, supervisor=supervisor,
                                 workload=workload, journal=journal)
    snapshot = SweepSnapshot.from_points(points)
    path = snapshot.save(args.snapshot)
    print(f"snapshot: {path} ({snapshot.describe()})")
    return [point.result for point in points], supervisor


def cmd_sweep(args) -> int:
    """``repro sweep``: a warehouse sweep at fixed processor count."""
    grid = _parse_grid(args.grid)
    faults = _faults(args)
    workload = _workload(args)
    journal = None
    if args.journal:
        journal = SweepJournal(args.journal)
    elif args.resume:
        journal = SweepJournal(_journal_path(args, faults, workload))
    if journal is not None:
        done = len(journal.load())
        print(f"journal: {journal.path} ({done} point(s) already complete)")
    coordinator = _fabric_coordinator(args)
    try:
        if args.snapshot:
            records, supervisor = _snapshot_sweep(args, grid, faults,
                                                  workload, journal,
                                                  coordinator)
        elif coordinator is not None:
            from repro.fabric import fabric_sweep

            supervisor = None
            records = fabric_sweep(grid, args.processors,
                                   machine=_machine(args),
                                   settings=_settings(args), faults=faults,
                                   journal=journal, coordinator=coordinator,
                                   workload=workload)
            _print_fabric_summary(coordinator)
        else:
            supervisor = _supervisor(args)
            records = sweep_parallel(grid, args.processors,
                                     machine=_machine(args),
                                     settings=_settings(args),
                                     faults=faults,
                                     journal=journal, jobs=args.jobs,
                                     supervisor=supervisor,
                                     workload=workload)
    except JournalOwnershipError as error:
        raise SystemExit(str(error))
    if supervisor is not None and supervisor.events:
        degraded = [e for e in supervisor.events
                    if e["event"] != "point-straggling"]
        print(f"supervision: {len(degraded)} degradation event(s) "
              f"({', '.join(sorted({e['event'] for e in degraded}))})")
    xs = [r.warehouses for r in records]
    series = {
        "TPS": [r.tps for r in records],
        "CPI": [r.cpi.cpi for r in records],
        "L3 MPI (/1000)": [r.rates.l3_misses_per_instr * 1000
                           for r in records],
        "reads/txn": [r.system.reads_per_txn for r in records],
        "cs/txn": [r.system.context_switches_per_txn for r in records],
        "util": [r.system.cpu_utilization for r in records],
    }
    print(render_series(
        f"Sweep at {args.processors}P on {args.machine}",
        "Warehouses", xs, series))
    if args.chart:
        print()
        print(render_chart(f"CPI vs warehouses ({args.processors}P)",
                           xs, {"CPI": series["CPI"]},
                           y_label="CPI", x_label="warehouses"))
    return 0


def cmd_pivot(args) -> int:
    """``repro pivot``: pivot-point analysis over a warehouse sweep."""
    grid = _parse_grid(args.grid)
    records = sweep_parallel(grid, args.processors, machine=_machine(args),
                             settings=_settings(args), jobs=args.jobs,
                             workload=_workload(args))
    xs = [r.warehouses for r in records]
    if args.metric == "cpi":
        ys = [r.cpi.cpi for r in records]
    else:
        ys = [r.rates.l3_misses_per_instr for r in records]
    analysis = pivot_point(xs, ys, metric=args.metric,
                           processors=args.processors)
    fit = analysis.fit
    print(render_table(
        f"Two-region fit of {args.metric.upper()} at {args.processors}P",
        ["region", "slope", "intercept", "r^2"],
        [["cached", f"{fit.cached.slope:.3e}", f"{fit.cached.intercept:.4f}",
          f"{fit.cached.r_squared:.3f}"],
         ["scaled", f"{fit.scaled.slope:.3e}", f"{fit.scaled.intercept:.4f}",
          f"{fit.scaled.r_squared:.3f}"]],
        note=(f"pivot at {analysis.pivot_warehouses:.0f} warehouses; "
              f"minimal representative configuration: "
              f"{representative_configuration(analysis)}W"
              if analysis.has_pivot else "segments are parallel: no pivot")))
    return 0


def cmd_table1(args) -> int:
    """``repro table1``: the saturation-client search (paper Table 1)."""
    from repro.experiments import exp_table1

    result = exp_table1.run(machine=_machine(args), settings=_settings(args),
                            jobs=args.jobs)
    print(exp_table1.render(result))
    return 0


def cmd_variability(args) -> int:
    """``repro variability``: seed-sensitivity study of one point."""
    from repro.experiments.variability import measure_variability

    report = measure_variability(args.warehouses, args.processors,
                                 seeds=tuple(range(1, args.seeds + 1)),
                                 machine=_machine(args),
                                 settings=_settings(args))
    rows = []
    for name in sorted(report.metrics):
        metric = report.metrics[name]
        low, high = metric.confidence_interval(0.95)
        rows.append([name, f"{metric.mean:.4g}", f"{metric.stdev:.3g}",
                     f"{metric.coefficient_of_variation:.2%}",
                     f"[{low:.4g}, {high:.4g}]"])
    worst, cv = report.worst_cv()
    print(render_table(
        f"Variability across {len(report.seeds)} seeds: "
        f"W={args.warehouses} P={args.processors}",
        ["metric", "mean", "stdev", "CV", "95% CI"],
        rows, note=f"noisiest metric: {worst} (CV {cv:.1%})"))
    return 0


def cmd_clear_cache(_args) -> int:
    """``repro clear-cache``: drop cached results (and manifests)."""
    removed = default_cache().clear()
    print(f"removed {removed} cached result(s)")
    return 0


def _reports_dir() -> Path:
    return Path(__file__).resolve().parents[2] / "results" / "reports"


def _slug(name: str) -> str:
    return "".join(c if c.isalnum() or c in "-." else "_" for c in name)


def cmd_report(args) -> int:
    """``repro report``: traced run (or ``--sweep``) -> dashboard."""
    import repro.obs as obs
    from repro.experiments.report import build_run_report, write_run_report
    from repro.experiments.runner import last_manifest

    if args.sweep:
        return _report_sweep(args)
    if args.warehouses is None:
        raise SystemExit("repro report needs -w/--warehouses "
                         "(or --sweep for a sweep-level report)")
    faults = _faults(args)
    machine = _machine(args)
    tracer = obs.enable_tracing()
    try:
        # A fresh (uncached) run: the dashboard reports *this* run's
        # phase timings, not the wall time of a cache load.
        result = run_configuration(
            args.warehouses, args.processors, clients=args.clients,
            machine=machine, settings=_settings(args), use_cache=False,
            faults=faults, workload=_workload(args))
    finally:
        obs.disable_tracing()
    report = build_run_report(
        result,
        manifest=last_manifest(),
        tracer=tracer,
        provenance=obs.emon_provenance(result, machine),
        faults=faults,
    )
    out = Path(args.out) if args.out else _reports_dir()
    stem = (f"report_{_slug(machine.name)}_w{result.warehouses}"
            f"_c{result.clients}_p{result.processors}")
    for path in write_run_report(report, out, stem, html=args.html):
        print(path)
    return 0


def _report_sweep(args) -> int:
    """The ``repro report --sweep`` path: one aggregated dashboard."""
    from repro.experiments.parallel import sweep_telemetry
    from repro.experiments.report import write_run_report
    from repro.obs.sweep_report import build_sweep_report

    grid = _parse_grid(args.grid)
    machine = _machine(args)
    supervisor = _supervisor(args)
    points = sweep_telemetry(grid, args.processors, machine=machine,
                             settings=_settings(args), faults=_faults(args),
                             jobs=args.jobs, supervisor=supervisor,
                             workload=_workload(args))
    if getattr(args, "snapshot", None):
        from repro.obs.snapshot import SweepSnapshot

        snapshot = SweepSnapshot.from_points(points)
        print(f"snapshot: {snapshot.save(args.snapshot)} "
              f"({snapshot.describe()})")
    report = build_sweep_report(
        points, events=supervisor.events if supervisor is not None else None)
    out = Path(args.out) if args.out else _reports_dir()
    stem = (f"sweep_{_slug(machine.name)}_p{args.processors}"
            f"_w{'-'.join(str(w) for w in grid)}")
    for path in write_run_report(report, out, stem, html=args.html):
        print(path)
    return 0


def _traces_dir() -> Path:
    return Path(__file__).resolve().parents[2] / "results" / "traces"


def cmd_trace(args) -> int:
    """``repro trace``: export a sweep as Chrome trace JSON / validate."""
    from repro.experiments.parallel import sweep_telemetry
    from repro.obs.trace_export import (
        tracks_from_points,
        validate_chrome_trace_file,
        write_chrome_trace,
    )

    if args.action == "validate":
        if not args.file:
            raise SystemExit("repro trace validate needs a trace file")
        problems = validate_chrome_trace_file(args.file)
        for problem in problems:
            print(problem)
        if problems:
            print(f"{len(problems)} trace schema problem(s)")
            return 1
        print(f"{args.file}: valid trace_event JSON")
        return 0

    grid = _parse_grid(args.grid)
    machine = _machine(args)
    points = sweep_telemetry(grid, args.processors, machine=machine,
                             settings=_settings(args), faults=_faults(args),
                             jobs=args.jobs, workload=_workload(args))
    tracks = tracks_from_points(points)
    if not tracks:
        raise SystemExit("no spans were recorded (all points were "
                         "cache hits?); try REPRO_NO_CACHE=1")
    if args.out:
        out = Path(args.out)
    else:
        out = (_traces_dir()
               / (f"sweep_{_slug(machine.name)}_p{args.processors}"
                  f"_w{'-'.join(str(w) for w in grid)}.trace.json"))
    print(write_chrome_trace(tracks, out))
    print(f"{len(tracks)} track(s); load in https://ui.perfetto.dev "
          "or chrome://tracing")
    return 0


def _workload_snapshot(args, reference):
    """Run one workload's sweep and freeze it (``repro diff --workload``)."""
    from repro.experiments.parallel import sweep_telemetry
    from repro.obs.snapshot import SweepSnapshot
    from repro.workload import WorkloadSpecError, resolve_workload

    try:
        workload = resolve_workload(reference)
    except WorkloadSpecError as error:
        raise SystemExit(f"cannot load workload {reference!r}: {error}")
    grid = _parse_grid(args.grid)
    points = sweep_telemetry(grid, args.processors, machine=_machine(args),
                             settings=_settings(args), jobs=args.jobs,
                             workload=workload)
    print(f"swept workload {workload.name}: {len(points)} point(s)")
    return SweepSnapshot.from_points(points,
                                     source=f"workload:{workload.name}")


def cmd_diff(args) -> int:
    """``repro diff``: compare two sweep snapshots (or two workloads).

    Exit codes: 0 on success (even with differences), 1 on load/usage
    errors, and :data:`repro.obs.diff.REGRESSION_EXIT_CODE` (3) when
    ``--fail-on-regress`` is set and any metric cell regressed beyond
    its threshold — the code CI gates on.
    """
    from repro.experiments.report import write_run_report
    from repro.obs.diff import (
        ThresholdPolicy,
        ThresholdPolicyError,
        build_diff_report,
        diff_snapshots,
    )
    from repro.obs.snapshot import SnapshotError, resolve_snapshot

    policy = None
    if args.thresholds:
        try:
            policy = ThresholdPolicy.load(args.thresholds)
        except ThresholdPolicyError as error:
            raise SystemExit(str(error))
    workloads = args.workload or []
    if workloads:
        if len(workloads) != 2 or args.baseline or args.candidate:
            raise SystemExit("workload mode takes exactly two --workload "
                             "flags and no positional snapshots")
        baseline = _workload_snapshot(args, workloads[0])
        candidate = _workload_snapshot(args, workloads[1])
    else:
        if not args.baseline or not args.candidate:
            raise SystemExit("repro diff needs <baseline> <candidate> — "
                             "each a snapshot file, sweep journal, or "
                             "cache directory — or two --workload flags")
        try:
            baseline = resolve_snapshot(args.baseline)
            candidate = resolve_snapshot(args.candidate)
        except SnapshotError as error:
            raise SystemExit(str(error))
    diff = diff_snapshots(baseline, candidate, policy=policy)
    report = build_diff_report(diff, unchanged=args.unchanged)
    out = Path(args.out) if args.out else _reports_dir()
    stem = f"diff_{baseline.checksum()}_vs_{candidate.checksum()}"
    for path in write_run_report(report, out, stem, html=args.html):
        print(path)
    counts = diff.verdict_counts()
    summary = ", ".join(f"{verdict}={count}"
                        for verdict, count in counts.items() if count)
    print(f"verdicts: {summary or 'no metric cells compared'}")
    if diff.identical:
        print("canonical payloads are identical")
    code = diff.exit_code(args.fail_on_regress)
    if code:
        print(f"{len(diff.regressions)} regressed cell(s): exit {code}")
    return code


def cmd_workload(args) -> int:
    """``repro workload list|show|validate``: the scenario library."""
    from repro.workload import (
        WorkloadSpecError,
        available_workloads,
        compile_workload,
        load_workload,
        resolve_workload,
        scenario_paths,
    )

    if args.action == "list":
        rows = []
        for name, spec in sorted(available_workloads().items()):
            rows.append([
                name,
                str(len(spec.transactions)),
                str(len(spec.phases or ())),
                "odb" if spec.segments is None else str(len(spec.segments)),
                spec.fingerprint(),
                spec.description.split(":")[0].strip() or "-",
            ])
        print(render_table(
            "Shipped workload scenarios (--workload NAME)",
            ["name", "txns", "phases", "segments", "fingerprint", "summary"],
            rows,
            note="authoring guide: docs/WORKLOADS.md; validate a custom "
                 "spec with `repro workload validate path/to/spec.yaml`"))
        return 0

    if args.action == "show":
        if len(args.specs) != 1:
            raise SystemExit("repro workload show needs exactly one "
                             "workload name or spec file")
        try:
            spec = resolve_workload(args.specs[0])
        except WorkloadSpecError as error:
            raise SystemExit(str(error))
        compiled = compile_workload(spec)
        total = sum(t.weight for t in spec.transactions)
        rows = [[t.name, f"{t.weight / total:.1%}",
                 f"{t.user_instructions / 1e6:.2f}M",
                 f"{t.redo_bytes / 1024:.1f} KB",
                 ", ".join(t.locks) or "-",
                 str(len(t.touches))]
                for t in spec.transactions]
        print(render_table(
            f"workload {spec.name} ({spec.fingerprint()})",
            ["transaction", "share", "user instr", "redo", "locks",
             "touches"],
            rows, note=spec.description or None))
        if spec.segments is not None:
            print("segments: " + ", ".join(
                f"{s.name}={s.units or int(s.bytes)}"
                f"{'u' if s.units else 'B'}"
                f"{'' if s.per_warehouse else ' (global)'}"
                for s in spec.segments))
        if spec.phases:
            for phase in spec.phases:
                overrides = ", ".join(f"{name}={weight}"
                                      for name, weight in phase.weights)
                print(f"phase {phase.name}: {phase.duration_s}s "
                      f"[{overrides or 'base weights'}]")
        if compiled.is_standard:
            print("(bit-identical to the built-in default mix)")
        return 0

    # validate: explicit spec files, or the whole shipped library.
    failures = 0
    if args.specs:
        targets = [Path(ref) for ref in args.specs]
    else:
        targets = scenario_paths()
        print(f"validating the shipped library "
              f"({len(targets)} scenario file(s))")
    for path in targets:
        try:
            spec = load_workload(path)
            compiled = compile_workload(spec)
            # Exercise the full compile path, including block-space
            # construction for custom layouts, at a nominal scale.
            compiled.build_block_space(2, 64 * 1024)
            if compiled.phases:
                compiled.build_mix(clock=lambda: 0.0)
            else:
                compiled.build_mix()
        except WorkloadSpecError as error:
            print(f"FAIL {error}")
            failures += 1
            continue
        extra = " (standard)" if compiled.is_standard else ""
        print(f"ok   {spec.name}: {len(spec.transactions)} txns, "
              f"{len(spec.phases or ())} phase(s), "
              f"fingerprint {spec.fingerprint()}{extra}")
    if failures:
        print(f"{failures} invalid spec(s)")
        return 1
    return 0


def cmd_docs(args) -> int:
    """``repro docs regen``: refresh (or check) generated doc blocks."""
    from repro.experiments.docs import DocDriftError, regen_all

    try:
        drift = regen_all(check=args.check)
    except DocDriftError as error:
        raise SystemExit(str(error))
    if not drift:
        print("docs are in sync with the results/ artifacts")
        return 0
    for name, blocks in sorted(drift.items()):
        verb = "drifted" if args.check else "regenerated"
        print(f"{name}: {verb} block(s): {', '.join(blocks)}")
    if args.check:
        print("doc drift detected; run `python -m repro docs regen`")
        return 1
    return 0


def cmd_fabric_worker(args) -> int:
    """``repro fabric-worker``: join a remote coordinator's fleet.

    Dials the coordinator's ``--bind`` address, serves leases, and
    rejoins (session token + lease re-validation, deterministic
    jittered backoff) when the channel drops — up to
    ``--max-reconnects`` attempts before giving up.
    """
    import os
    import socket

    from repro.fabric import FabricChaosPolicy, run_with_reconnect

    host, port = _parse_hostport(args.connect, "--connect")
    secret = _fabric_secret(args)
    chaos = (FabricChaosPolicy.from_json(args.chaos)
             if args.chaos else None)
    worker_id = (args.worker_id
                 or f"{socket.gethostname()}-{os.getpid()}")
    return run_with_reconnect(f"{host}:{port}", worker_id,
                              heartbeat_s=args.heartbeat, chaos=chaos,
                              secret=secret,
                              max_reconnects=args.max_reconnects)


def build_parser() -> argparse.ArgumentParser:
    """The argparse command tree for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Scaling and Characterizing Database "
                    "Workloads' (MICRO 2003)")
    commands = parser.add_subparsers(dest="command", required=True)

    run_parser = commands.add_parser("run", help="run one configuration")
    run_parser.add_argument("-w", "--warehouses", type=int, required=True)
    run_parser.add_argument("-p", "--processors", type=int, default=4)
    run_parser.add_argument("-c", "--clients", type=int, default=None,
                            help="default: the Table 1 value for (W, P)")
    _add_common(run_parser)
    _add_faults(run_parser)
    _add_workload(run_parser)
    run_parser.set_defaults(func=cmd_run)

    sweep_parser = commands.add_parser("sweep", help="warehouse sweep")
    sweep_parser.add_argument("-p", "--processors", type=int, default=4)
    sweep_parser.add_argument("--grid", default=None,
                              help="comma-separated warehouse counts")
    sweep_parser.add_argument("--chart", action="store_true",
                              help="also draw an ASCII CPI chart")
    sweep_parser.add_argument("--resume", action="store_true",
                              help="checkpoint each completed point and "
                                   "resume a killed sweep from its journal")
    sweep_parser.add_argument("--journal", default=None, metavar="PATH",
                              help="explicit journal file (implies --resume)")
    sweep_parser.add_argument("--snapshot", default=None, metavar="PATH",
                              help="freeze the sweep as a diffable "
                                   "SweepSnapshot artifact (repro diff; "
                                   "DESIGN.md §15)")
    _add_common(sweep_parser)
    _add_faults(sweep_parser)
    _add_workload(sweep_parser)
    _add_jobs(sweep_parser)
    _add_supervision(sweep_parser)
    _add_fabric(sweep_parser)
    sweep_parser.set_defaults(func=cmd_sweep)

    pivot_parser = commands.add_parser("pivot",
                                       help="two-region fit and pivot point")
    pivot_parser.add_argument("-p", "--processors", type=int, default=4)
    pivot_parser.add_argument("--metric", choices=("cpi", "mpi"),
                              default="cpi")
    pivot_parser.add_argument("--grid", default=None)
    _add_common(pivot_parser)
    _add_workload(pivot_parser)
    _add_jobs(pivot_parser)
    pivot_parser.set_defaults(func=cmd_pivot)

    table1_parser = commands.add_parser(
        "table1", help="clients for 90%% CPU utilization")
    _add_common(table1_parser)
    _add_jobs(table1_parser)
    table1_parser.set_defaults(func=cmd_table1)

    var_parser = commands.add_parser(
        "variability", help="multi-seed measurement variability")
    var_parser.add_argument("-w", "--warehouses", type=int, required=True)
    var_parser.add_argument("-p", "--processors", type=int, default=4)
    var_parser.add_argument("--seeds", type=int, default=5)
    _add_common(var_parser)
    var_parser.set_defaults(func=cmd_variability)

    report_parser = commands.add_parser(
        "report", help="traced run (or --sweep) -> dashboard")
    report_parser.add_argument("-w", "--warehouses", type=int, default=None,
                               help="required unless --sweep")
    report_parser.add_argument("-p", "--processors", type=int, default=4)
    report_parser.add_argument("-c", "--clients", type=int, default=None,
                               help="default: the Table 1 value for (W, P)")
    report_parser.add_argument("--sweep", action="store_true",
                               help="aggregate a whole warehouse sweep "
                                    "into one report")
    report_parser.add_argument("--grid", default=None,
                               help="warehouse grid for --sweep "
                                    "(comma-separated)")
    report_parser.add_argument("--html", action="store_true",
                               help="also write an HTML dashboard")
    report_parser.add_argument("--out", default=None, metavar="DIR",
                               help="output directory "
                                    "(default: results/reports/)")
    report_parser.add_argument("--snapshot", default=None, metavar="PATH",
                               help="with --sweep: also freeze the sweep "
                                    "as a diffable SweepSnapshot artifact")
    _add_common(report_parser)
    _add_faults(report_parser)
    _add_workload(report_parser)
    _add_jobs(report_parser)
    _add_supervision(report_parser)
    report_parser.set_defaults(func=cmd_report)

    trace_parser = commands.add_parser(
        "trace", help="Chrome trace_event export of a telemetry sweep")
    trace_parser.add_argument("action", choices=("export", "validate"),
                              help="export: run a sweep and write trace "
                                   "JSON; validate: schema-check a file")
    trace_parser.add_argument("file", nargs="?", default=None,
                              help="trace file (validate only)")
    trace_parser.add_argument("-p", "--processors", type=int, default=4)
    trace_parser.add_argument("--grid", default=None,
                              help="comma-separated warehouse counts")
    trace_parser.add_argument("--out", default=None, metavar="PATH",
                              help="output trace file "
                                   "(default: results/traces/*.trace.json)")
    _add_common(trace_parser)
    _add_faults(trace_parser)
    _add_workload(trace_parser)
    _add_jobs(trace_parser)
    trace_parser.set_defaults(func=cmd_trace)

    diff_parser = commands.add_parser(
        "diff", help="compare two sweep snapshots (CI regression gate)")
    diff_parser.add_argument("baseline", nargs="?", default=None,
                             help="baseline: snapshot file, sweep journal "
                                  "(.jsonl), or result-cache directory")
    diff_parser.add_argument("candidate", nargs="?", default=None,
                             help="candidate: snapshot file, sweep journal "
                                  "(.jsonl), or result-cache directory")
    diff_parser.add_argument("--workload", action="append", default=None,
                             metavar="NAME|PATH",
                             help="give twice to sweep and diff two "
                                  "workload scenarios side by side "
                                  "(instead of positional snapshots)")
    diff_parser.add_argument("-p", "--processors", type=int, default=4,
                             help="processor count for --workload sweeps")
    diff_parser.add_argument("--grid", default=None,
                             help="warehouse grid for --workload sweeps "
                                  "(comma-separated)")
    diff_parser.add_argument("--thresholds", default=None,
                             metavar="POLICY.yaml",
                             help="per-metric threshold overrides "
                                  "(YAML/JSON; see DESIGN.md §15)")
    diff_parser.add_argument("--fail-on-regress", action="store_true",
                             help="exit 3 when any metric cell regressed "
                                  "beyond its threshold (the CI gate)")
    diff_parser.add_argument("--unchanged", action="store_true",
                             help="include unchanged cells in the delta "
                                  "table (default: movement only)")
    diff_parser.add_argument("--html", action="store_true",
                             help="also write an HTML diff report")
    diff_parser.add_argument("--out", default=None, metavar="DIR",
                             help="output directory "
                                  "(default: results/reports/)")
    _add_common(diff_parser)
    _add_jobs(diff_parser)
    diff_parser.set_defaults(func=cmd_diff)

    workload_parser = commands.add_parser(
        "workload", help="list/show/validate declarative workloads")
    workload_parser.add_argument(
        "action", choices=("list", "show", "validate"),
        help="list: shipped scenarios; show: one spec spelled out; "
             "validate: check spec files (default: the whole library)")
    workload_parser.add_argument(
        "specs", nargs="*", default=[],
        help="workload name (show) or spec files (validate)")
    workload_parser.set_defaults(func=cmd_workload)

    docs_parser = commands.add_parser(
        "docs", help="regenerate doc blocks from results/ artifacts")
    docs_parser.add_argument("action", choices=("regen",),
                             help="regen: rewrite the generated blocks")
    docs_parser.add_argument("--check", action="store_true",
                             help="fail (exit 1) on drift instead of "
                                  "rewriting (the CI doc-drift gate)")
    docs_parser.set_defaults(func=cmd_docs)

    fw_parser = commands.add_parser(
        "fabric-worker",
        help="join a remote sweep coordinator as a fabric worker")
    fw_parser.add_argument("--connect", required=True, metavar="HOST:PORT",
                           help="the coordinator's --bind address")
    fw_parser.add_argument("--worker-id", default=None,
                           help="identity announced in the handshake "
                                "(default: <hostname>-<pid>)")
    fw_parser.add_argument("--fabric-secret", default=None, metavar="PATH",
                           help="file holding the shared fabric secret "
                                "(default: $REPRO_FABRIC_SECRET if set)")
    fw_parser.add_argument("--heartbeat", type=float, default=0.25,
                           metavar="S",
                           help="seconds between heartbeat frames")
    fw_parser.add_argument("--max-reconnects", type=int, default=10,
                           metavar="N",
                           help="rejoin attempts after a lost coordinator "
                                "before giving up")
    fw_parser.add_argument("--chaos", default=None,
                           help="FabricChaosPolicy as JSON (test-only)")
    fw_parser.set_defaults(func=cmd_fabric_worker)

    cache_parser = commands.add_parser("clear-cache",
                                       help="drop cached sweep results")
    cache_parser.set_defaults(func=cmd_clear_cache)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point: parse arguments and dispatch to a subcommand."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
