"""The shipped scenario library and ``--workload`` reference resolution.

Scenarios live as YAML files under ``src/repro/workload/scenarios/``;
the file stem is the workload name (enforced at load, so ``--workload
banking`` always means ``banking.yaml``).  ``resolve_workload`` accepts
either a library name or a path to a user spec file, which is how every
CLI surface takes its workload argument.
"""

from __future__ import annotations

from functools import lru_cache
from pathlib import Path

from repro.workload.loader import load_workload
from repro.workload.spec import WorkloadSpec, WorkloadSpecError

#: The workload every run uses unless told otherwise — compiled, it is
#: value-identical to the built-in STANDARD_PROFILES mix.
DEFAULT_WORKLOAD = "odb-standard"

_SCENARIO_SUFFIXES = (".yaml", ".yml", ".json")


def scenarios_dir() -> Path:
    """The shipped scenario directory."""
    return Path(__file__).resolve().parent / "scenarios"


def scenario_paths() -> list[Path]:
    """All shipped scenario spec files, sorted by name."""
    directory = scenarios_dir()
    if not directory.is_dir():  # pragma: no cover - packaging error
        return []
    return sorted(path for path in directory.iterdir()
                  if path.suffix in _SCENARIO_SUFFIXES)


@lru_cache(maxsize=1)
def _library() -> dict[str, WorkloadSpec]:
    specs: dict[str, WorkloadSpec] = {}
    for path in scenario_paths():
        spec = load_workload(path)
        if spec.name != path.stem:
            raise WorkloadSpecError(
                f"{path.name}: name: scenario file stem must match the "
                f"workload name (got {spec.name!r})")
        specs[spec.name] = spec
    return specs


def available_workloads() -> dict[str, WorkloadSpec]:
    """Name -> spec for every shipped scenario (load-validated)."""
    return dict(_library())


def workload_by_name(name: str) -> WorkloadSpec:
    """A shipped scenario by name; unknown names list what exists."""
    library = _library()
    try:
        return library[name]
    except KeyError:
        known = ", ".join(sorted(library))
        raise WorkloadSpecError(
            f"unknown workload {name!r}; known: {known} "
            f"(or pass a path to a spec file)") from None


def resolve_workload(reference: str | Path) -> WorkloadSpec:
    """Resolve a ``--workload`` argument: library name or spec path.

    Anything that looks like a file (an existing path, or a reference
    with a spec suffix or a path separator) loads as a file; everything
    else is a library lookup.
    """
    path = Path(reference)
    looks_like_file = (path.suffix in _SCENARIO_SUFFIXES
                       or len(path.parts) > 1)
    if looks_like_file or path.exists():
        return load_workload(path)
    return workload_by_name(str(reference))
