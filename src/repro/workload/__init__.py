"""Declarative workloads: specs in, transaction mixes out.

The package splits into four small layers:

- :mod:`repro.workload.spec` — the frozen, validated dataclass model
  (:class:`WorkloadSpec` and friends) with canonical serialization and
  a stable fingerprint.
- :mod:`repro.workload.loader` — strict YAML/JSON parsing with
  key-path error messages.
- :mod:`repro.workload.compiler` — lowering to the ODB runtime types
  (``compile_workload`` -> :class:`CompiledWorkload`); the standard
  scenario compiles bit-identically to the built-in mix.
- :mod:`repro.workload.library` — the shipped scenario files and
  ``--workload`` reference resolution.

Authoring guide and schema reference: ``docs/WORKLOADS.md``.
"""

from repro.workload.compiler import CompiledWorkload, compile_workload
from repro.workload.library import (
    DEFAULT_WORKLOAD,
    available_workloads,
    resolve_workload,
    scenario_paths,
    scenarios_dir,
    workload_by_name,
)
from repro.workload.loader import (
    load_workload,
    parse_workload,
    parse_workload_text,
)
from repro.workload.spec import (
    PhaseSpec,
    SegmentSpec,
    TouchRule,
    TransactionSpec,
    WorkloadSpec,
    WorkloadSpecError,
)

__all__ = [
    "CompiledWorkload",
    "DEFAULT_WORKLOAD",
    "PhaseSpec",
    "SegmentSpec",
    "TouchRule",
    "TransactionSpec",
    "WorkloadSpec",
    "WorkloadSpecError",
    "available_workloads",
    "compile_workload",
    "load_workload",
    "parse_workload",
    "parse_workload_text",
    "resolve_workload",
    "scenario_paths",
    "scenarios_dir",
    "workload_by_name",
]
