"""Parse workload specs from YAML/JSON mappings and files.

The loader is the strict front door of the DSL: it walks the raw
mapping key by key, rejects anything it does not know (a typo like
``wieght`` fails loudly instead of silently meaning "default"), type-
coerces numerics (every float field goes through ``float()`` so a YAML
``1450000`` and ``1.45e6`` build identical specs), and raises
:class:`~repro.workload.spec.WorkloadSpecError` with single-line
messages of the form ``<source>: <key path>: <what is wrong>``.

YAML support comes from PyYAML when it is installed; ``.json`` files
(and JSON text, which is a YAML subset anyway) always work, so an
environment without PyYAML can still author workloads.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional

from repro.workload.spec import (
    PhaseSpec,
    SegmentSpec,
    TouchRule,
    TransactionSpec,
    WorkloadSpec,
    WorkloadSpecError,
)

#: Key sets the loader accepts, per mapping level.  Anything else is an
#: unknown-field error naming the key and the known set.
_TOP_KEYS = ("name", "description", "remote_touch_prob", "segments",
             "transactions", "phases")
_SEGMENT_KEYS = ("name", "units", "bytes", "per_warehouse")
_TRANSACTION_KEYS = ("name", "weight", "user_instructions", "touches",
                     "locks", "redo_bytes", "districts_touched")
_TOUCH_KEYS = ("segment", "count", "write_prob", "distribution", "skew",
               "index")
_PHASE_KEYS = ("name", "duration_s", "weights")


def _fail(key: str, message: str) -> None:
    raise WorkloadSpecError(f"{key}: {message}")


def _check_mapping(data, key: str, known: tuple[str, ...]) -> dict:
    if not isinstance(data, dict):
        _fail(key, f"must be a mapping, got {type(data).__name__}")
    for found in data:
        if found not in known:
            _fail(f"{key}.{found}",
                  f"unknown key (known: {', '.join(known)})")
    return data


def _get_list(data: dict, key: str, path: str) -> list:
    value = data.get(key)
    if not isinstance(value, list):
        _fail(f"{path}{key}",
              f"must be a list, got {type(value).__name__}")
    return value


def _number(value, key: str, caster=float):
    try:
        return caster(value)
    except (TypeError, ValueError):
        _fail(key, f"must be a number, got {value!r}")


def _parse_touch(data, path: str) -> TouchRule:
    data = _check_mapping(data, path, _TOUCH_KEYS)
    if "segment" not in data:
        _fail(f"{path}.segment", "touch must name a segment")
    if "count" not in data:
        _fail(f"{path}.count", "touch must give a touch count")
    kwargs = {
        "segment": str(data["segment"]),
        "count": _number(data["count"], f"{path}.count", int),
    }
    if "write_prob" in data:
        kwargs["write_prob"] = _number(data["write_prob"],
                                       f"{path}.write_prob")
    if "distribution" in data:
        kwargs["distribution"] = str(data["distribution"])
    if "skew" in data:
        kwargs["skew"] = _number(data["skew"], f"{path}.skew")
    if "index" in data:
        kwargs["index"] = _number(data["index"], f"{path}.index", int)
    return TouchRule(**kwargs)


def _parse_transaction(data, path: str) -> TransactionSpec:
    data = _check_mapping(data, path, _TRANSACTION_KEYS)
    for required in ("name", "weight", "user_instructions", "touches"):
        if required not in data:
            _fail(f"{path}.{required}", "required key is missing")
    touches = tuple(
        _parse_touch(touch, f"{path}.touches[{index}]")
        for index, touch in enumerate(_get_list(data, "touches", f"{path}.")))
    kwargs = {
        "name": str(data["name"]),
        "weight": _number(data["weight"], f"{path}.weight"),
        "user_instructions": _number(data["user_instructions"],
                                     f"{path}.user_instructions"),
        "touches": touches,
    }
    if "locks" in data:
        locks = data["locks"]
        if not isinstance(locks, list):
            _fail(f"{path}.locks",
                  f"must be a list of lock kinds, got "
                  f"{type(locks).__name__}")
        kwargs["locks"] = tuple(str(lock) for lock in locks)
    if "redo_bytes" in data:
        kwargs["redo_bytes"] = _number(data["redo_bytes"],
                                       f"{path}.redo_bytes")
    if "districts_touched" in data:
        kwargs["districts_touched"] = _number(
            data["districts_touched"], f"{path}.districts_touched", int)
    return TransactionSpec(**kwargs)


def _parse_segment(data, path: str) -> SegmentSpec:
    data = _check_mapping(data, path, _SEGMENT_KEYS)
    if "name" not in data:
        _fail(f"{path}.name", "segment must have a name")
    kwargs = {"name": str(data["name"])}
    if "units" in data and data["units"] is not None:
        kwargs["units"] = _number(data["units"], f"{path}.units", int)
    if "bytes" in data and data["bytes"] is not None:
        kwargs["bytes"] = _number(data["bytes"], f"{path}.bytes")
    if "per_warehouse" in data:
        if not isinstance(data["per_warehouse"], bool):
            _fail(f"{path}.per_warehouse",
                  f"must be true or false, got {data['per_warehouse']!r}")
        kwargs["per_warehouse"] = data["per_warehouse"]
    return SegmentSpec(**kwargs)


def _parse_phase(data, path: str) -> PhaseSpec:
    data = _check_mapping(data, path, _PHASE_KEYS)
    for required in ("name", "duration_s"):
        if required not in data:
            _fail(f"{path}.{required}", "required key is missing")
    weights: tuple[tuple[str, float], ...] = ()
    if "weights" in data:
        raw = data["weights"]
        if not isinstance(raw, dict):
            _fail(f"{path}.weights",
                  f"must be a mapping of transaction name to weight, "
                  f"got {type(raw).__name__}")
        weights = tuple(
            (str(name), _number(value, f"{path}.weights[{name!r}]"))
            for name, value in raw.items())
    return PhaseSpec(
        name=str(data["name"]),
        duration_s=_number(data["duration_s"], f"{path}.duration_s"),
        weights=weights,
    )


def parse_workload(data, source: str = "<workload>") -> WorkloadSpec:
    """Build a validated :class:`WorkloadSpec` from a plain mapping.

    ``source`` (usually the file name) prefixes every error message so
    a failing spec in a sweep names the file to fix.
    """
    try:
        data = _check_mapping(data, "workload", _TOP_KEYS)
        if "name" not in data:
            _fail("name", "workload must have a name")
        if "transactions" not in data:
            _fail("transactions", "workload must define transactions")
        transactions = tuple(
            _parse_transaction(txn, f"transactions[{index}]")
            for index, txn in enumerate(_get_list(data, "transactions", "")))
        kwargs = {
            "name": str(data["name"]),
            "transactions": transactions,
            "description": str(data.get("description", "")).strip(),
        }
        if data.get("segments") is not None:
            kwargs["segments"] = tuple(
                _parse_segment(seg, f"segments[{index}]")
                for index, seg in enumerate(
                    _get_list(data, "segments", "")))
        if data.get("phases") is not None:
            kwargs["phases"] = tuple(
                _parse_phase(phase, f"phases[{index}]")
                for index, phase in enumerate(_get_list(data, "phases", "")))
        if data.get("remote_touch_prob") is not None:
            kwargs["remote_touch_prob"] = _number(
                data["remote_touch_prob"], "remote_touch_prob")
        return WorkloadSpec(**kwargs)
    except WorkloadSpecError as error:
        raise WorkloadSpecError(f"{source}: {error}") from None


def parse_workload_text(text: str,
                        source: str = "<workload>") -> WorkloadSpec:
    """Parse YAML (or JSON) text into a validated spec."""
    data = _load_structured_text(text, source)
    return parse_workload(data, source=source)


def load_workload(path: Path | str) -> WorkloadSpec:
    """Read one workload spec file (``.yaml``/``.yml``/``.json``)."""
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as error:
        raise WorkloadSpecError(f"{path}: cannot read spec file: {error}")
    return parse_workload_text(text, source=path.name)


def _load_structured_text(text: str, source: str):
    """YAML when available, JSON otherwise (JSON is always accepted)."""
    yaml = _yaml_module()
    if yaml is not None:
        try:
            return yaml.safe_load(text)
        except yaml.YAMLError as error:
            raise WorkloadSpecError(
                f"{source}: not valid YAML: {_one_line(error)}")
    try:
        return json.loads(text)
    except json.JSONDecodeError as error:
        raise WorkloadSpecError(
            f"{source}: not valid JSON (and PyYAML is not installed "
            f"for YAML specs): {_one_line(error)}")


def _one_line(error: Exception) -> str:
    return " ".join(str(error).split())


def _yaml_module() -> Optional[object]:
    """The ``yaml`` module, or ``None`` when PyYAML is absent."""
    try:
        import yaml
    except ImportError:  # pragma: no cover - PyYAML is normally present
        return None
    return yaml
