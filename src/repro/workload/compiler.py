"""Compile a :class:`WorkloadSpec` into the ODB runtime types.

The compiled form is the pre-DSL world: ``TransactionProfile`` tuples
(:data:`repro.odb.transactions.STANDARD_PROFILES` is exactly what the
``odb-standard`` scenario compiles to — value-equal dataclasses, so
sampler plan caches, RNG draw order, and therefore every metric are
bit-identical), an optional custom :class:`~repro.db.blocks.BlockSpace`
layout, and an optional phase schedule realized as a
:class:`~repro.odb.mix.PhasedTransactionMix`.

Compilation is pure and cached: specs are frozen/hashable, so
``compile_workload`` memoizes on the spec itself.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Optional

from repro.db.blocks import BlockSpace, Segment
from repro.odb.mix import PhasedTransactionMix, TransactionMix
from repro.odb.transactions import (
    STANDARD_PROFILES,
    TouchSpec,
    TransactionProfile,
)
from repro.workload.spec import (
    TouchRule,
    TransactionSpec,
    WorkloadSpec,
    WorkloadSpecError,
)


def _compile_touch(rule: TouchRule) -> TouchSpec:
    """One touch rule -> the sampler's TouchSpec.

    The four generator kinds map onto TouchSpec's knobs: ``zipf`` keeps
    its skew, ``uniform`` is Zipf with skew 0 (every unit equally
    likely), ``append`` sets the rolling-window flag, and ``fixed``
    pins the unit index.  Non-zipf kinds leave ``skew`` at the TouchSpec
    default so compiled standard touches stay value-equal to the
    hand-written :data:`STANDARD_PROFILES` entries.
    """
    kwargs = {
        "segment": rule.segment,
        "count": rule.count,
        "write_prob": rule.write_prob,
    }
    if rule.distribution == "zipf":
        kwargs["skew"] = rule.skew
    elif rule.distribution == "uniform":
        kwargs["skew"] = 0.0
    elif rule.distribution == "append":
        kwargs["append_hot"] = True
    elif rule.distribution == "fixed":
        kwargs["fixed_index"] = rule.index
    else:  # pragma: no cover - spec validation rejects unknown kinds
        raise WorkloadSpecError(
            f"touches[{rule.segment!r}].distribution: "
            f"unsupported kind {rule.distribution!r}")
    return TouchSpec(**kwargs)


def _compile_transaction(spec: TransactionSpec) -> TransactionProfile:
    return TransactionProfile(
        name=spec.name,
        weight=spec.weight,
        user_instructions=spec.user_instructions,
        touches=tuple(_compile_touch(rule) for rule in spec.touches),
        locks_warehouse_row="warehouse" in spec.locks,
        locks_district_row="district" in spec.locks,
        redo_bytes=spec.redo_bytes,
        districts_touched=spec.districts_touched,
    )


def _blended_profiles(
        base: tuple[TransactionProfile, ...],
        phases: tuple[tuple[float, tuple[TransactionProfile, ...]], ...],
) -> tuple[TransactionProfile, ...]:
    """Duration-weighted time-average of the phase mixes.

    Used as the compiled workload's *stationary* profile view — what
    the analytic cache prewarm and popularity model see.  Each phase's
    weights are normalized before blending, so a phase with large
    absolute weights does not dominate beyond its duration share.
    """
    total_duration = sum(duration for duration, _ in phases)
    shares = {profile.name: 0.0 for profile in base}
    for duration, profiles in phases:
        phase_total = sum(p.weight for p in profiles)
        for profile in profiles:
            shares[profile.name] += (
                (duration / total_duration) * profile.weight / phase_total)
    return tuple(dataclasses.replace(profile, weight=shares[profile.name])
                 for profile in base)


@dataclass(frozen=True)
class CompiledWorkload:
    """A spec lowered to runtime form; what :class:`OdbConfig` carries.

    Frozen and hashable (so configs stay hashable) and picklable (so it
    crosses process pools, though sweeps prefer shipping the spec and
    compiling worker-side).
    """

    spec: WorkloadSpec
    #: Stationary profiles: the mix itself when there are no phases,
    #: the duration-weighted blend when there are.
    profiles: tuple[TransactionProfile, ...]
    #: ``(duration_s, profiles)`` per phase; empty for stationary mixes.
    phases: tuple[tuple[float, tuple[TransactionProfile, ...]], ...]
    remote_touch_prob: Optional[float]

    @property
    def name(self) -> str:
        """The source spec's name."""
        return self.spec.name

    def fingerprint(self) -> str:
        """The source spec's content fingerprint (cache-key component)."""
        return self.spec.fingerprint()

    @property
    def is_standard(self) -> bool:
        """True when running this workload is indistinguishable from the
        built-in default — compiled profiles value-equal to
        :data:`STANDARD_PROFILES` with no phases, no custom layout, and
        no locality override.  Standard workloads share the default's
        cache keys."""
        return (self.profiles == STANDARD_PROFILES
                and not self.phases
                and self.spec.segments is None
                and self.spec.remote_touch_prob is None)

    def build_mix(self,
                  clock: Optional[Callable[[], float]] = None
                  ) -> TransactionMix:
        """The runtime mix; phase schedules need the engine ``clock``."""
        if not self.phases:
            return TransactionMix(self.profiles)
        if clock is None:
            raise ValueError(
                f"workload {self.name!r} has a phase schedule and needs a "
                f"simulation clock to build its mix")
        return PhasedTransactionMix(self.profiles, self.phases, clock)

    def build_block_space(self, warehouses: int,
                          unit_bytes: int) -> Optional[BlockSpace]:
        """The custom layout's block space, or ``None`` for the ODB
        default (the system then keeps its schema-built space)."""
        if self.spec.segments is None:
            return None
        segments = [
            Segment(seg.name, seg.resolved_units(unit_bytes),
                    per_warehouse=seg.per_warehouse)
            for seg in self.spec.segments
        ]
        return BlockSpace(warehouses, segments, unit_bytes)


@lru_cache(maxsize=128)
def compile_workload(spec: WorkloadSpec) -> CompiledWorkload:
    """Lower a validated spec to its runtime form (memoized)."""
    base = tuple(_compile_transaction(txn) for txn in spec.transactions)
    phases: tuple[tuple[float, tuple[TransactionProfile, ...]], ...] = ()
    profiles = base
    if spec.phases:
        phases = tuple(
            (phase.duration_s, tuple(
                dataclasses.replace(
                    profile, weight=phase.weight_map.get(profile.name,
                                                         profile.weight))
                for profile in base))
            for phase in spec.phases)
        profiles = _blended_profiles(base, phases)
    return CompiledWorkload(
        spec=spec,
        profiles=profiles,
        phases=phases,
        remote_touch_prob=spec.remote_touch_prob,
    )
