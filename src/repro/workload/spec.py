"""The declarative workload spec model.

A workload is *data*: a named set of weighted transaction types, each
built from block-touch rules with a parameter generator (zipf /
uniform / fixed / append), over either the default ODB segment layout
or a custom one, optionally modulated by a cyclic phase schedule (the
paper's Figures 12-14 new-order / payment waves).  Everything here is
a frozen dataclass so specs hash, pickle across process pools and the
sweep fabric, and fingerprint stably into cache keys.

Validation happens at construction: every ``__post_init__`` raises
:class:`WorkloadSpecError` with a single actionable line naming the
offending key (``transactions[0].weight: must be positive, got -1``).
The loader (:mod:`repro.workload.loader`) builds these dataclasses
from YAML/JSON mappings and prefixes the source file name.

See ``docs/WORKLOADS.md`` for the field-by-field schema reference.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Optional

#: Generator kinds a touch rule may use for block-index selection.
DISTRIBUTIONS = ("zipf", "uniform", "fixed", "append")

#: Hot-row locks a transaction may take (held to commit): the
#: warehouse row and/or the (block-shared) district row.
LOCK_KINDS = ("warehouse", "district")

#: Default Zipf skew — matches :class:`repro.odb.transactions.TouchSpec`.
DEFAULT_SKEW = 0.5

#: Default redo volume per transaction (the paper's ~6 KB mean).
DEFAULT_REDO_BYTES = 6 * 1024.0


class WorkloadSpecError(ValueError):
    """A workload spec failed validation; message names the bad key."""


def _require(condition: bool, key: str, message: str) -> None:
    if not condition:
        raise WorkloadSpecError(f"{key}: {message}")


@dataclass(frozen=True)
class SegmentSpec:
    """One table segment of a custom layout (omit for the ODB schema).

    Size it with exactly one of ``units`` (block units, exact) or
    ``bytes`` (converted at run time through the configuration's
    ``unit_bytes`` resolution, like the ODB schema's own sizing).
    ``bytes`` is per warehouse for per-warehouse segments and total
    for global ones.
    """

    name: str
    units: Optional[int] = None
    bytes: Optional[float] = None
    per_warehouse: bool = True

    def __post_init__(self) -> None:
        key = f"segments[{self.name!r}]"
        _require(bool(self.name), "segments[].name",
                 "segment name must be a non-empty string")
        _require((self.units is None) != (self.bytes is None), key,
                 "size with exactly one of 'units' or 'bytes'")
        if self.units is not None:
            _require(self.units > 0, f"{key}.units",
                     f"must be a positive unit count, got {self.units}")
        if self.bytes is not None:
            _require(self.bytes > 0, f"{key}.bytes",
                     f"must be a positive byte size, got {self.bytes}")

    def resolved_units(self, unit_bytes: int) -> int:
        """Unit count at a given block-unit resolution (>= 1)."""
        if self.units is not None:
            return self.units
        return max(1, int(self.bytes) // unit_bytes)


@dataclass(frozen=True)
class TouchRule:
    """Block touches one transaction makes against one segment.

    The ``distribution`` generator picks the block index on every
    touch: ``zipf`` (popularity skewed by ``skew``), ``uniform``
    (every unit equally likely), ``fixed`` (always unit ``index`` —
    a hot counter row), or ``append`` (a small rolling window at the
    segment tail, the orders/history append pattern).
    """

    segment: str
    count: int
    write_prob: float = 0.0
    distribution: str = "zipf"
    skew: float = DEFAULT_SKEW
    index: int = 0

    def __post_init__(self) -> None:
        key = f"touches[{self.segment!r}]"
        _require(bool(self.segment), "touches[].segment",
                 "touch must name a segment")
        _require(self.count > 0, f"{key}.count",
                 f"must be a positive touch count, got {self.count}")
        _require(0.0 <= self.write_prob <= 1.0, f"{key}.write_prob",
                 f"must be in [0, 1], got {self.write_prob}")
        _require(self.distribution in DISTRIBUTIONS, f"{key}.distribution",
                 f"must be one of {'/'.join(DISTRIBUTIONS)}, "
                 f"got {self.distribution!r}")
        _require(self.skew >= 0.0, f"{key}.skew",
                 f"must be >= 0, got {self.skew}")
        if self.distribution != "zipf":
            _require(self.skew == DEFAULT_SKEW, f"{key}.skew",
                     f"only meaningful with distribution 'zipf' "
                     f"(got distribution {self.distribution!r})")
        _require(self.index >= 0, f"{key}.index",
                 f"must be >= 0, got {self.index}")
        if self.distribution != "fixed":
            _require(self.index == 0, f"{key}.index",
                     f"only meaningful with distribution 'fixed' "
                     f"(got distribution {self.distribution!r})")


@dataclass(frozen=True)
class TransactionSpec:
    """One weighted transaction type of the workload."""

    name: str
    weight: float
    user_instructions: float
    touches: tuple[TouchRule, ...]
    locks: tuple[str, ...] = ()
    redo_bytes: float = DEFAULT_REDO_BYTES
    districts_touched: int = 1

    def __post_init__(self) -> None:
        object.__setattr__(self, "touches", tuple(self.touches))
        object.__setattr__(self, "locks", tuple(self.locks))
        key = f"transactions[{self.name!r}]"
        _require(bool(self.name), "transactions[].name",
                 "transaction must have a non-empty name")
        _require(self.weight > 0, f"{key}.weight",
                 f"must be positive, got {self.weight}")
        _require(self.user_instructions > 0, f"{key}.user_instructions",
                 f"must be positive, got {self.user_instructions}")
        _require(len(self.touches) > 0, f"{key}.touches",
                 "must list at least one touch rule")
        for lock in self.locks:
            _require(lock in LOCK_KINDS, f"{key}.locks",
                     f"must name locks from {'/'.join(LOCK_KINDS)}, "
                     f"got {lock!r}")
        _require(len(set(self.locks)) == len(self.locks), f"{key}.locks",
                 f"duplicate lock kinds in {list(self.locks)}")
        _require(self.redo_bytes >= 0, f"{key}.redo_bytes",
                 f"must be >= 0, got {self.redo_bytes}")
        _require(self.districts_touched >= 1, f"{key}.districts_touched",
                 f"must be >= 1, got {self.districts_touched}")


@dataclass(frozen=True)
class PhaseSpec:
    """One phase of a cyclic schedule: weight overrides for a while.

    ``weights`` replaces the base weight of the named transactions for
    ``duration_s`` simulated seconds; unnamed transactions keep their
    base weight.  Phases repeat in order for the whole run.
    """

    name: str
    duration_s: float
    weights: tuple[tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "weights",
            tuple((str(n), w) for n, w in (
                self.weights.items() if isinstance(self.weights, dict)
                else self.weights)))
        key = f"phases[{self.name!r}]"
        _require(bool(self.name), "phases[].name",
                 "phase must have a non-empty name")
        _require(self.duration_s > 0, f"{key}.duration_s",
                 f"must be positive simulated seconds, got {self.duration_s}")
        for txn, weight in self.weights:
            _require(weight > 0, f"{key}.weights[{txn!r}]",
                     f"must be positive, got {weight}")

    @property
    def weight_map(self) -> dict[str, float]:
        """The overrides as a plain ``{transaction: weight}`` dict."""
        return dict(self.weights)


@dataclass(frozen=True)
class WorkloadSpec:
    """A complete declarative workload: the unit ``--workload`` loads.

    ``segments=None`` means the default ODB layout
    (:func:`repro.odb.schema.odb_segments`); ``phases=None`` means a
    stationary mix; ``remote_touch_prob=None`` keeps the
    configuration's locality default (0.10).
    """

    name: str
    transactions: tuple[TransactionSpec, ...]
    description: str = ""
    segments: Optional[tuple[SegmentSpec, ...]] = None
    phases: Optional[tuple[PhaseSpec, ...]] = None
    remote_touch_prob: Optional[float] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "transactions", tuple(self.transactions))
        if self.segments is not None:
            object.__setattr__(self, "segments", tuple(self.segments))
        if self.phases is not None:
            object.__setattr__(self, "phases", tuple(self.phases))
        _require(bool(self.name), "name",
                 "workload must have a non-empty name")
        _require(len(self.transactions) > 0, "transactions",
                 "must define at least one transaction")
        names = [t.name for t in self.transactions]
        _require(len(set(names)) == len(names), "transactions",
                 f"duplicate transaction names in {names}")
        if self.remote_touch_prob is not None:
            _require(0.0 <= self.remote_touch_prob <= 1.0,
                     "remote_touch_prob",
                     f"must be in [0, 1], got {self.remote_touch_prob}")
        if self.segments is not None:
            _require(len(self.segments) > 0, "segments",
                     "must list at least one segment when present "
                     "(omit the key for the default ODB layout)")
            seg_names = [s.name for s in self.segments]
            _require(len(set(seg_names)) == len(seg_names), "segments",
                     f"duplicate segment names in {seg_names}")
        if self.phases is not None:
            _require(len(self.phases) > 0, "phases",
                     "must list at least one phase when present "
                     "(omit the key for a stationary mix)")
            phase_names = [p.name for p in self.phases]
            _require(len(set(phase_names)) == len(phase_names), "phases",
                     f"duplicate phase names in {phase_names}")
        self._check_references()

    def _check_references(self) -> None:
        """Cross-references: touches hit known segments, phases hit
        known transactions."""
        known_segments = self.segment_names()
        for txn in self.transactions:
            for touch in txn.touches:
                _require(
                    touch.segment in known_segments,
                    f"transactions[{txn.name!r}].touches[{touch.segment!r}]"
                    ".segment",
                    f"unknown segment (known: "
                    f"{', '.join(sorted(known_segments))})")
        txn_names = {t.name for t in self.transactions}
        for phase in self.phases or ():
            for name, _weight in phase.weights:
                _require(
                    name in txn_names,
                    f"phases[{phase.name!r}].weights[{name!r}]",
                    f"unknown transaction (known: "
                    f"{', '.join(sorted(txn_names))})")

    def segment_names(self) -> frozenset[str]:
        """Segment names touches may reference (custom or ODB default)."""
        if self.segments is not None:
            return frozenset(s.name for s in self.segments)
        from repro.odb.schema import odb_segments

        return frozenset(s.name for s in odb_segments())

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-dict form (canonical: defaults included), JSON-ready."""
        return {
            "name": self.name,
            "description": self.description,
            "remote_touch_prob": self.remote_touch_prob,
            "segments": (None if self.segments is None else [
                {"name": s.name, "units": s.units, "bytes": s.bytes,
                 "per_warehouse": s.per_warehouse}
                for s in self.segments]),
            "transactions": [
                {"name": t.name, "weight": t.weight,
                 "user_instructions": t.user_instructions,
                 "locks": list(t.locks), "redo_bytes": t.redo_bytes,
                 "districts_touched": t.districts_touched,
                 "touches": [
                     {"segment": r.segment, "count": r.count,
                      "write_prob": r.write_prob,
                      "distribution": r.distribution,
                      "skew": r.skew, "index": r.index}
                     for r in t.touches]}
                for t in self.transactions],
            "phases": (None if self.phases is None else [
                {"name": p.name, "duration_s": p.duration_s,
                 "weights": dict(p.weights)}
                for p in self.phases]),
        }

    def fingerprint(self) -> str:
        """Short stable content hash (the cache-key part).

        Canonical over :meth:`to_dict`, so two spellings of the same
        workload (YAML vs JSON, keys reordered, defaults written out)
        fingerprint identically.
        """
        canonical = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.blake2b(canonical.encode(),
                               digest_size=6).hexdigest()

    def transaction_by_name(self, name: str) -> TransactionSpec:
        """The named transaction spec; raises ``KeyError`` if unknown."""
        for txn in self.transactions:
            if txn.name == name:
                return txn
        known = ", ".join(t.name for t in self.transactions)
        raise KeyError(f"unknown transaction {name!r}; known: {known}")
