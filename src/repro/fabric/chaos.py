"""Deterministic fabric-fault injection (test-only), extending ChaosPolicy.

:class:`~repro.experiments.supervisor.ChaosPolicy` injects *pool*
faults inside a local worker; this module injects *fabric* faults —
the distributed failure modes DESIGN.md §12's failure matrix enumerates
— inside a remote worker process, using the same seeded
``(key, attempt)`` draw (:func:`~repro.experiments.supervisor._unit_hash`
idiom) so every chaos run replays identically:

- ``kill`` — the worker SIGKILLs itself mid-point: the transport goes
  EOF, the coordinator must detect the loss and re-lease the point;
- ``blackhole`` — the worker suppresses heartbeats and sits on the
  finished result for ``delay_s``: the coordinator must declare it dead
  on heartbeat timeout, re-lease the point, and then *deduplicate* the
  stale completion when it finally arrives;
- ``corrupt`` — the worker emits a garbage frame before its result: the
  coordinator must quarantine the worker, not the sweep;
- ``duplicate`` — the worker sends its result frame twice: the second
  completion must be deduplicated, never double-journaled;
- ``latency`` — the worker sleeps ``latency_s`` before sending the
  result: leases must tolerate slow links without spurious expiry;
- ``halfopen`` — the worker stops reading and writing without closing
  the socket (no FIN): the coordinator's heartbeat timeout, not a
  blocked read, must surface the loss;
- ``sloworis`` — the worker trickles a frame one byte at a time slower
  than the transport's read deadline: the reader must declare the
  frame stalled and quarantine the worker;
- ``partition`` — asymmetric partition: the worker keeps *sending*
  heartbeats but stops *receiving* coordinator frames, so its lease
  can never renew and the coordinator must expire it;
- ``replay`` — the worker records its signed result frame and sends
  the identical bytes again: on an authenticated channel the stale
  sequence number must be rejected (``fabric.auth.rejected``) without
  failing the sweep;
- ``disconnect`` — the worker closes its socket after finishing the
  point and exits with the reconnect status code: the
  ``repro fabric-worker`` supervisor loop must dial back in, resume
  its session by token, and carry on.

Chaos fires only on the first ``attempts`` attempts of a point, so any
retry budget ``>= attempts`` is guaranteed to converge; ``targets``
scopes the blast radius to specific cache keys.  The policy serializes
to JSON (:meth:`to_dict`/:meth:`from_dict`) because it rides to the
worker on its command line.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, fields
from typing import Optional

from repro.experiments.supervisor import _unit_hash

#: The fabric fault kinds, in draw order.  New kinds append after the
#: original four so a policy that only uses the old kinds draws
#: identically to PR 6.
FABRIC_FAULTS = ("kill", "blackhole", "corrupt", "duplicate",
                 "latency", "halfopen", "sloworis", "partition",
                 "replay", "disconnect")


@dataclass(frozen=True)
class FabricChaosPolicy:
    """Seeded, JSON-serializable fabric-fault injector (test-only)."""

    seed: int = 0
    kill: float = 0.0
    blackhole: float = 0.0
    corrupt: float = 0.0
    duplicate: float = 0.0
    latency: float = 0.0
    halfopen: float = 0.0
    sloworis: float = 0.0
    partition: float = 0.0
    replay: float = 0.0
    disconnect: float = 0.0
    attempts: int = 1
    #: How long a blackholed worker sits on its finished result before
    #: sending it anyway (to exercise the dedup path).
    delay_s: float = 2.0
    #: Injected send delay for the ``latency`` fault.
    latency_s: float = 0.1
    targets: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        for name in FABRIC_FAULTS:
            if not 0.0 <= getattr(self, name) <= 1.0:
                raise ValueError(f"{name} must be a probability in [0, 1]")
        if sum(getattr(self, name) for name in FABRIC_FAULTS) > 1.0 + 1e-9:
            raise ValueError("fault probabilities must sum to <= 1")
        if self.attempts < 0:
            raise ValueError("attempts must be >= 0")
        if self.delay_s < 0:
            raise ValueError("delay_s must be >= 0")
        if self.latency_s < 0:
            raise ValueError("latency_s must be >= 0")
        object.__setattr__(self, "targets", tuple(self.targets))

    def action(self, key: str, attempt: int) -> Optional[str]:
        """The fabric fault to inject for this (key, attempt), or None."""
        if attempt >= self.attempts:
            return None
        if self.targets and key not in self.targets:
            return None
        draw = _unit_hash("fabric-chaos", self.seed, key, attempt)
        threshold = 0.0
        for name in FABRIC_FAULTS:
            threshold += getattr(self, name)
            if draw < threshold:
                return name
        return None

    def to_dict(self) -> dict:
        """JSON-serializable form (the worker command-line payload)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "FabricChaosPolicy":
        """Rebuild a policy from its :meth:`to_dict` payload."""
        names = {f.name for f in fields(cls)}
        kwargs = {k: v for k, v in data.items() if k in names}
        if "targets" in kwargs:
            kwargs["targets"] = tuple(kwargs["targets"])
        return cls(**kwargs)

    def to_json(self) -> str:
        """Canonical JSON text (the ``--chaos`` worker argument)."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FabricChaosPolicy":
        """Parse a policy from :meth:`to_json` text."""
        return cls.from_dict(json.loads(text))


__all__ = ["FABRIC_FAULTS", "FabricChaosPolicy"]
