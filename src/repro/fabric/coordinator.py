"""The fabric coordinator: lease points to workers, survive their deaths.

:class:`FabricCoordinator` drives a sweep across remote worker
processes (DESIGN.md §12).  It owns the full robustness contract:

- **Leases** — each ready worker holds at most one time-bounded lease on
  one :class:`~repro.experiments.parallel.RunSpec` point; an expired
  lease requeues the point (with the supervisor's deterministic
  :func:`~repro.experiments.supervisor.backoff_delay`) without killing
  the worker — a late-but-valid completion is still accepted.
- **Heartbeats** — a worker silent past ``heartbeat_timeout_s`` is
  marked unresponsive and its lease requeued; it is restored to the
  ready pool if it comes back, quarantined after
  ``worker_failure_threshold`` strikes.
- **Quarantine** — a malformed frame (or a checksum-mismatched result)
  condemns the *worker*, never the sweep: its lease requeues and the
  channel is closed with the bounded teardown ladder.
- **Idempotent completion** — the coordinator tracks completed config
  keys; a duplicate completion (re-leased point finishing twice,
  chaos replay) is counted and dropped, so the
  :class:`~repro.experiments.resilience.SweepJournal` — written *only*
  by the coordinator, via the ``on_result`` hook — records every point
  exactly once.
- **Graceful degradation** — when every worker is lost or quarantined
  (or ``REPRO_SERIAL=1`` forbids spawning), the remaining points finish
  on a local :class:`~repro.experiments.supervisor.ShardedSupervisor`
  under the same policy and the same ``on_result`` hook.

Because every point is a pure function of its spec, none of this can
change results: a fabric sweep is bit-identical to a serial sweep, and
``events`` / ``worker_health()`` (mirrored to ``fabric.*`` metrics)
are descriptive telemetry only.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional, Sequence, Union

from repro.experiments.parallel import (
    PointTelemetry,
    RunSpec,
    serial_forced,
)
from repro.experiments.records import ConfigResult, payload_checksum
from repro.experiments.resilience import SweepJournal
from repro.experiments.supervisor import (
    ShardedSupervisor,
    SupervisorPolicy,
    SweepFailure,
    backoff_delay,
    default_shards,
)
from repro.fabric.chaos import FabricChaosPolicy
from repro.fabric.protocol import (
    PROTOCOL_VERSION,
    FrameAuthError,
    FrameError,
)
from repro.fabric.transports import (
    CHANNEL_CLOSED,
    DEFAULT_READ_DEADLINE_S,
    TcpListener,
    WorkerTransport,
    close_transports,
    launch_stdio_workers,
    launch_tcp_workers,
)
from repro.obs import metrics as _metrics
from repro.obs.manifest import RunManifest

#: Transport names accepted by ``FabricPolicy.transport``.
TRANSPORTS = ("stdio", "tcp")


@dataclass(frozen=True)
class FabricPolicy:
    """Fabric-layer knobs: worker fleet shape, liveness, lease bounds.

    Retry budget and backoff shape stay on
    :class:`~repro.experiments.supervisor.SupervisorPolicy` — the fabric
    reuses them unchanged, so a sweep degrades from distributed to
    sharded-local without changing its retry semantics.
    """

    workers: int = 2
    transport: str = "stdio"
    heartbeat_s: float = 0.25
    heartbeat_timeout_s: float = 2.0
    #: Wall-clock bound on one lease; ``None`` disables expiry.
    lease_timeout_s: Optional[float] = None
    #: Unresponsive/error strikes before a worker is quarantined.
    worker_failure_threshold: int = 3
    handshake_timeout_s: float = 10.0
    tick_s: float = 0.02
    close_timeout_s: float = 5.0
    #: Shared secret enabling authenticated framing (``None`` = off).
    secret: Optional[str] = None
    #: ``host:port`` to bind the TCP listener on for *external* workers
    #: (``repro fabric-worker --connect``); no local fleet is spawned.
    bind: Optional[str] = None
    #: Mid-frame read deadline on TCP channels (half-open detection).
    read_deadline_s: float = DEFAULT_READ_DEADLINE_S
    #: How long a bind-mode coordinator waits with zero usable workers
    #: (fleet still joining, or rejoining after a partition) before
    #: degrading to the local fallback.
    accept_grace_s: float = 30.0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("need at least one worker")
        if self.transport not in TRANSPORTS:
            raise ValueError(f"transport must be one of {TRANSPORTS}")
        if self.heartbeat_s <= 0 or self.heartbeat_timeout_s <= 0:
            raise ValueError("heartbeat intervals must be positive")
        if self.heartbeat_timeout_s <= self.heartbeat_s:
            raise ValueError("heartbeat_timeout_s must exceed heartbeat_s")
        if self.lease_timeout_s is not None and self.lease_timeout_s <= 0:
            raise ValueError("lease_timeout_s must be positive (or None)")
        if self.worker_failure_threshold < 1:
            raise ValueError("worker_failure_threshold must be >= 1")
        if self.handshake_timeout_s <= 0 or self.tick_s <= 0:
            raise ValueError("timeouts must be positive")
        if self.bind is not None and self.transport != "tcp":
            raise ValueError("bind requires the tcp transport")
        if self.read_deadline_s <= 0:
            raise ValueError("read_deadline_s must be positive")
        if self.accept_grace_s < 0:
            raise ValueError("accept_grace_s must be >= 0")


@dataclass
class WorkerHealth:
    """Public health snapshot of one worker (see ``worker_health()``)."""

    name: str
    host: str = ""
    pid: Optional[int] = None
    state: str = "connecting"
    completed: int = 0
    failures: int = 0
    duplicates: int = 0
    reconnects: int = 0
    revalidated: int = 0


#: Worker states.  ``connecting`` → ``ready`` on handshake; ``ready`` ↔
#: ``unresponsive`` on heartbeat loss/recovery; ``lost`` (channel EOF,
#: dead process, handshake timeout), ``quarantined`` (malformed frame,
#: bad checksum, failure threshold) and ``rejected`` (protocol
#: mismatch) are terminal.
_TERMINAL_STATES = frozenset({"lost", "quarantined", "rejected"})


class _WorkerRuntime:
    """Mutable per-worker state: transport, liveness clocks, lease."""

    def __init__(self, transport: WorkerTransport, now: float,
                 handshake_timeout_s: float):
        self.transport = transport
        self.name = transport.name
        self.host = ""
        self.pid: Optional[int] = None
        self.state = "connecting"
        self.completed = 0
        self.failures = 0
        self.duplicates = 0
        self.reconnects = 0
        self.revalidated = 0
        self.token: Optional[str] = None
        self.point = None
        self.last_beat = now
        self.last_strike = now
        self.handshake_deadline = now + handshake_timeout_s

    def health(self) -> WorkerHealth:
        """The picklable snapshot of this worker's counters."""
        return WorkerHealth(name=self.name, host=self.host, pid=self.pid,
                            state=self.state, completed=self.completed,
                            failures=self.failures,
                            duplicates=self.duplicates,
                            reconnects=self.reconnects,
                            revalidated=self.revalidated)


_WAITING, _RUNNING, _DONE = "waiting", "running", "done"


class _Point:
    """Coordinator-side state of one sweep point across its leases."""

    __slots__ = ("index", "spec", "key", "attempt", "state", "not_before",
                 "deadline", "last_error")

    def __init__(self, index: int, spec: RunSpec):
        self.index = index
        self.spec = spec
        self.key = spec.key()
        self.attempt = 0
        self.state = _WAITING
        self.not_before = 0.0
        self.deadline: Optional[float] = None
        self.last_error: Optional[BaseException] = None


class FabricCoordinator:
    """Distributed executor for :class:`RunSpec` points over transports.

    ``run(specs)`` returns payloads in grid order —
    :class:`~repro.experiments.records.ConfigResult` by default,
    :class:`~repro.experiments.parallel.PointTelemetry` (stamped with
    the producing worker's id) with ``telemetry=True`` — surviving
    worker death, silence, corruption and replay, or raising
    :class:`~repro.experiments.supervisor.SweepFailure` once a point's
    retry budget is spent.  Pass prebuilt ``transports`` (tests), or
    let ``fabric.workers``/``fabric.transport`` spawn the fleet.
    """

    def __init__(self, transports: Optional[Sequence[WorkerTransport]] = None,
                 policy: Optional[SupervisorPolicy] = None,
                 fabric: Optional[FabricPolicy] = None,
                 chaos: Optional[FabricChaosPolicy] = None,
                 use_cache: bool = True,
                 cache_dir: Optional[Union[str, Path]] = None):
        self.policy = policy or SupervisorPolicy()
        self.fabric = fabric or FabricPolicy()
        self.chaos = chaos
        self.use_cache = use_cache
        self.cache_dir = str(cache_dir) if cache_dir is not None else None
        self._given_transports = list(transports) if transports else None
        self._workers: list[_WorkerRuntime] = []
        self._listener: Optional[TcpListener] = None
        #: Session token → runtime, for reconnect rebinding.
        self._tokens: dict[str, _WorkerRuntime] = {}
        self._accept_counter = 0
        #: Ordered degradation timeline (dicts with ``seq``/``event``
        #: plus ``worker``/``key``/``reason`` fields as applicable).
        self.events: list[dict] = []
        self._completed: set[str] = set()
        self._lease_counter = 0
        self._telemetry = False

    # ------------------------------------------------------------------
    # telemetry plumbing

    def worker_health(self) -> list[WorkerHealth]:
        """Per-worker health snapshots, in connection order."""
        return [worker.health() for worker in self._workers]

    def _event(self, kind: str, **fields) -> None:
        record = {"seq": len(self.events), "event": kind}
        record.update(fields)
        self.events.append(record)
        if _metrics.ACTIVE:
            _metrics.inc(f"fabric.{kind.replace('-', '_')}")
            _metrics.emit(f"fabric-{kind}", **fields)

    # ------------------------------------------------------------------
    # fleet lifecycle

    def listen(self) -> TcpListener:
        """Bind (or return) the TCP accept socket.

        Called eagerly by the CLI in ``--bind`` mode so the bound
        address can be printed before the sweep starts; ``run`` calls
        it lazily otherwise.  The listener carries the fabric secret
        and read deadline to every accepted transport.
        """
        if self._listener is None:
            host, port = "127.0.0.1", 0
            if self.fabric.bind is not None:
                host, _, port_text = self.fabric.bind.rpartition(":")
                port = int(port_text)
            self._listener = TcpListener(
                host, port, secret=self.fabric.secret,
                read_deadline_s=self.fabric.read_deadline_s)
        return self._listener

    def _spawn(self, now: float) -> None:
        chaos_json = self.chaos.to_json() if self.chaos is not None else None
        if self._given_transports is not None:
            transports = self._given_transports
            for transport in transports:
                # Prebuilt signed channels that were never challenged
                # get their session nonce dealt now (idempotence guard:
                # a challenge is always a signer's first send).
                if (transport.signer is not None
                        and transport.signer.send_seq == 0):
                    transport.issue_challenge()
        elif self.fabric.transport == "tcp":
            listener = self.listen()
            if self.fabric.bind is not None:
                # Bind mode: no local fleet — external workers join via
                # ``repro fabric-worker --connect`` and are accepted by
                # ``_accept_pending`` as they dial in.
                transports = []
            else:
                transports = launch_tcp_workers(
                    self.fabric.workers, listener,
                    heartbeat_s=self.fabric.heartbeat_s,
                    chaos_json=chaos_json)
        else:
            transports = launch_stdio_workers(
                self.fabric.workers, heartbeat_s=self.fabric.heartbeat_s,
                chaos_json=chaos_json, secret=self.fabric.secret)
        self._workers = [
            _WorkerRuntime(transport, now, self.fabric.handshake_timeout_s)
            for transport in transports]
        self._event("fleet-started", workers=len(self._workers),
                    transport=self.fabric.transport,
                    bind=self.fabric.bind)

    def _accept_pending(self, now: float) -> None:
        """Admit workers dialing in mid-sweep (joins and reconnects)."""
        if self._listener is None:
            return
        while True:
            self._accept_counter += 1
            try:
                transport = self._listener.poll_accept(
                    name=f"joined-{self._accept_counter}")
            except OSError:  # pragma: no cover - listener torn down
                return
            if transport is None:
                self._accept_counter -= 1
                return
            runtime = _WorkerRuntime(transport, now,
                                     self.fabric.handshake_timeout_s)
            self._workers.append(runtime)
            self._event("worker-accepted", worker=transport.name)

    def _shutdown(self) -> None:
        for worker in self._workers:
            if worker.state not in _TERMINAL_STATES:
                worker.transport.send({"type": "shutdown"})
        close_transports([worker.transport for worker in self._workers],
                         timeout_s=self.fabric.close_timeout_s)
        if self._listener is not None:
            self._listener.close()
            self._listener = None

    def _usable(self) -> list[_WorkerRuntime]:
        return [worker for worker in self._workers
                if worker.state not in _TERMINAL_STATES]

    def _release_lease(self, worker: _WorkerRuntime):
        point = worker.point
        worker.point = None
        if point is not None and point.state != _DONE:
            return point
        return None

    def _condemn(self, worker: _WorkerRuntime, state: str, kind: str,
                 reason: str, now: float) -> None:
        """Move a worker to a terminal state and requeue its lease."""
        if worker.state in _TERMINAL_STATES:
            return
        worker.state = state
        self._event(kind, worker=worker.name, reason=reason)
        point = self._release_lease(worker)
        worker.transport.close(timeout_s=self.fabric.close_timeout_s)
        if point is not None:
            self._retry(point, RuntimeError(f"{worker.name}: {reason}"), now)

    def _lose(self, worker: _WorkerRuntime, reason: str, now: float) -> None:
        self._condemn(worker, "lost", "worker-lost", reason, now)

    def _quarantine(self, worker: _WorkerRuntime, reason: str,
                    now: float) -> None:
        self._condemn(worker, "quarantined", "worker-quarantined", reason,
                      now)

    def _strike(self, worker: _WorkerRuntime, reason: str,
                now: float) -> None:
        """Count one failure; quarantine at the policy threshold."""
        worker.failures += 1
        if worker.failures >= self.fabric.worker_failure_threshold:
            self._quarantine(worker, f"failure threshold: {reason}", now)

    # ------------------------------------------------------------------
    # point lifecycle

    def _retry(self, point: _Point, error: BaseException,
               now: float) -> None:
        point.attempt += 1
        point.last_error = error
        point.deadline = None
        if point.attempt > self.policy.max_retries:
            raise SweepFailure(point.key, point.attempt, error)
        delay = backoff_delay(point.key, point.attempt, self.policy)
        point.state = _WAITING
        point.not_before = now + delay
        self._event("point-retry", key=point.key, attempt=point.attempt,
                    backoff_s=round(delay, 6), error=repr(error))

    def _assign(self, now: float) -> None:
        ready = [worker for worker in self._workers
                 if worker.state == "ready" and worker.point is None]
        if not ready:
            return
        for point in self._points:
            if not ready:
                return
            if point.state != _WAITING or point.not_before > now:
                continue
            worker = ready.pop(0)
            self._lease_counter += 1
            lease = {"type": "lease",
                     "lease_id": f"L{self._lease_counter}",
                     "key": point.key, "attempt": point.attempt,
                     "spec": _encode_spec(point.spec),
                     "use_cache": self.use_cache}
            if self.cache_dir is not None:
                lease["cache_dir"] = self.cache_dir
            if not worker.transport.send(lease):
                self._lose(worker, "send failed", now)
                continue
            worker.point = point
            point.state = _RUNNING
            point.deadline = (now + self.fabric.lease_timeout_s
                              if self.fabric.lease_timeout_s is not None
                              else None)
            self._event("lease-granted", worker=worker.name, key=point.key,
                        attempt=point.attempt)

    def _complete(self, point: _Point, worker_name: str, message: dict,
                  on_result: Optional[Callable]) -> None:
        result = ConfigResult.from_dict(message["result"])
        if self._telemetry:
            manifest = None
            raw = message.get("manifest")
            if isinstance(raw, dict):
                try:
                    manifest = RunManifest.from_dict(raw)
                except (ValueError, TypeError):
                    manifest = None
            trace = message.get("trace")
            metrics = message.get("metrics")
            payload = PointTelemetry(
                spec=point.spec, result=result, manifest=manifest,
                trace=trace if isinstance(trace, dict) else {},
                metrics=metrics if isinstance(metrics, dict) else {},
                worker=worker_name)
        else:
            payload = result
        self._results[point.index] = payload
        point.state = _DONE
        point.deadline = None
        self._completed.add(point.key)
        if _metrics.ACTIVE:
            _metrics.inc("fabric.points_completed")
        if on_result is not None:
            on_result(point.spec, result)

    # ------------------------------------------------------------------
    # frame handling

    def _mark_alive(self, worker: _WorkerRuntime, now: float) -> None:
        worker.last_beat = now
        if worker.state == "unresponsive":
            worker.state = "ready"
            self._event("worker-recovered", worker=worker.name)

    def _reject(self, worker: _WorkerRuntime, reason: str) -> None:
        worker.transport.send({"type": "reject", "reason": reason})
        worker.state = "rejected"
        self._event("worker-rejected", worker=worker.name, reason=reason)
        worker.transport.close(timeout_s=self.fabric.close_timeout_s)

    def _handle_hello(self, worker: _WorkerRuntime, message: dict,
                      now: float) -> None:
        if message["protocol"] != PROTOCOL_VERSION:
            self._reject(worker, f"protocol {message['protocol']} != "
                                 f"{PROTOCOL_VERSION}")
            return
        token = message.get("token")
        previous = (self._tokens.get(token)
                    if isinstance(token, str) else None)
        old_point = None
        if previous is not None and previous is not worker:
            if previous.state in ("quarantined", "rejected"):
                self._reject(worker, f"resume refused: session was "
                                     f"{previous.state}")
                return
            # The reconnecting worker supersedes its old channel: carry
            # the counters across, drop the dead transport without a
            # strike, and remember any lease it still nominally held.
            if previous.state not in _TERMINAL_STATES:
                previous.state = "lost"
                self._event("worker-superseded", worker=previous.name)
            old_point = previous.point
            previous.point = None
            previous.transport.close(timeout_s=self.fabric.close_timeout_s)
            worker.completed = previous.completed
            worker.failures = previous.failures
            worker.duplicates = previous.duplicates
            worker.revalidated = previous.revalidated
            worker.reconnects = previous.reconnects + 1
            self._event("worker-reconnected",
                        worker=message["worker_id"],
                        reconnects=worker.reconnects)
            if _metrics.ACTIVE:
                _metrics.inc("fabric.reconnect.attempts")
        worker.name = message["worker_id"]
        worker.transport.name = worker.name
        worker.host = message["host"]
        worker.pid = message["pid"]
        if previous is not None:
            worker.token = token
        else:
            worker.token = f"T{os.urandom(12).hex()}"
        self._tokens[worker.token] = worker
        if not worker.transport.send({"type": "welcome",
                                      "protocol": PROTOCOL_VERSION,
                                      "token": worker.token}):
            self._lose(worker, "welcome send failed", now)
            return
        worker.state = "ready"
        worker.last_beat = now
        self._event("worker-ready", worker=worker.name, host=worker.host,
                    pid=worker.pid)
        self._revalidate(worker, message.get("resuming"), old_point, now)

    def _revalidate(self, worker: _WorkerRuntime, resuming,
                    old_point, now: float) -> None:
        """Re-validate a resumed worker's in-flight lease.

        The worker claims it still holds a lease (its hello carried
        ``resuming``) and will deliver the result momentarily.  When
        the point is still open and un-leased, re-grant it — no
        double-execution.  When it has finished or been re-leased
        elsewhere, the incoming result simply dedups.  Any *other*
        lease the old channel held goes back to the queue.
        """
        if isinstance(resuming, dict):
            point = self._by_key.get(resuming.get("key"))
            if (point is not None and point.state != _DONE
                    and not any(peer.point is point
                                for peer in self._workers)):
                worker.point = point
                point.state = _RUNNING
                point.deadline = (now + self.fabric.lease_timeout_s
                                  if self.fabric.lease_timeout_s is not None
                                  else None)
                worker.revalidated += 1
                self._event("lease-revalidated", worker=worker.name,
                            key=point.key, attempt=point.attempt)
                if _metrics.ACTIVE:
                    _metrics.inc("fabric.leases.revalidated")
        if (old_point is not None and old_point.state == _RUNNING
                and not any(peer.point is old_point
                            for peer in self._workers)):
            self._retry(old_point, RuntimeError(
                f"{worker.name}: lease orphaned by reconnect"), now)

    def _handle_result(self, worker: _WorkerRuntime, message: dict,
                       now: float, on_result: Optional[Callable]) -> None:
        self._mark_alive(worker, now)
        key = message["key"]
        if key in self._completed:
            worker.duplicates += 1
            self._event("duplicate-completion", worker=worker.name, key=key)
            if worker.point is not None and worker.point.key == key:
                worker.point = None
            return
        if payload_checksum(message["result"]) != message["checksum"]:
            self._quarantine(worker, f"checksum mismatch on {key}", now)
            return
        point = self._by_key.get(key)
        if point is None or point.state == _DONE:
            return
        if worker.point is point:
            worker.point = None
        worker.completed += 1
        self._complete(point, worker.name, message, on_result)

    def _handle_error(self, worker: _WorkerRuntime, message: dict,
                      now: float) -> None:
        self._mark_alive(worker, now)
        key = message["key"]
        if worker.point is not None and worker.point.key == key:
            worker.point = None
        self._strike(worker, f"error on {key}", now)
        point = self._by_key.get(key)
        if point is not None and point.state == _RUNNING:
            self._retry(point, RuntimeError(message["error"]), now)

    def _poll(self, now: float, on_result: Optional[Callable]) -> None:
        for worker in self._workers:
            if worker.state in _TERMINAL_STATES:
                continue
            for item in worker.transport.poll():
                if worker.state in _TERMINAL_STATES:
                    break
                if item is CHANNEL_CLOSED:
                    self._lose(worker, "channel closed", now)
                    break
                if isinstance(item, FrameAuthError):
                    # Forged, replayed, or cross-sweep frame: reject the
                    # worker (its lease requeues), never the sweep.
                    if _metrics.ACTIVE:
                        _metrics.inc("fabric.auth.rejected")
                    self._condemn(worker, "rejected",
                                  "worker-auth-rejected", str(item), now)
                    break
                if isinstance(item, FrameError):
                    self._quarantine(worker, f"malformed frame: {item}",
                                     now)
                    break
                kind = item.get("type")
                if kind == "hello":
                    self._handle_hello(worker, item, now)
                elif kind == "heartbeat":
                    self._mark_alive(worker, now)
                elif kind == "result":
                    self._handle_result(worker, item, now, on_result)
                elif kind == "error":
                    self._handle_error(worker, item, now)
                # welcome/reject/lease/shutdown are coordinator → worker
                # frames; receiving one here is harmless noise.

    def _scan_liveness(self, now: float) -> None:
        for worker in self._workers:
            if worker.state in _TERMINAL_STATES:
                continue
            if not worker.transport.alive():
                self._lose(worker, "process died", now)
                continue
            if (worker.state == "connecting"
                    and now >= worker.handshake_deadline):
                self._lose(worker, "handshake timeout", now)
                continue
            if (worker.state == "ready"
                    and now - worker.last_beat
                    > self.fabric.heartbeat_timeout_s):
                worker.state = "unresponsive"
                worker.last_strike = now
                self._event("worker-unresponsive", worker=worker.name,
                            silent_s=round(now - worker.last_beat, 3))
                point = self._release_lease(worker)
                self._strike(worker, "heartbeat timeout", now)
                if point is not None and point.state == _RUNNING:
                    self._retry(point, TimeoutError(
                        f"{worker.name} heartbeat timeout"), now)
            elif (worker.state == "unresponsive"
                    and now - worker.last_strike
                    > self.fabric.heartbeat_timeout_s):
                # Continued silence escalates: each further timeout
                # window is another strike, so a permanently dark
                # worker reaches the quarantine threshold instead of
                # parking in limbo forever.
                worker.last_strike = now
                self._strike(worker, "continued silence", now)

    def _scan_leases(self, now: float) -> None:
        for point in self._points:
            if point.state != _RUNNING or point.deadline is None:
                continue
            if now >= point.deadline:
                self._event("lease-expired", key=point.key,
                            attempt=point.attempt,
                            timeout_s=self.fabric.lease_timeout_s)
                # The worker keeps computing; only the lease is revoked.
                # Its eventual completion is accepted (if first) or
                # deduplicated (if the re-lease won the race).
                for worker in self._workers:
                    if worker.point is point:
                        worker.point = None
                self._retry(point, TimeoutError(
                    f"lease on {point.key} exceeded "
                    f"{self.fabric.lease_timeout_s}s"), now)

    # ------------------------------------------------------------------
    # graceful degradation

    def _run_fallback(self, on_result: Optional[Callable],
                      reason: str) -> None:
        remaining = [point for point in self._points
                     if point.state != _DONE]
        self._event("local-fallback", remaining=len(remaining),
                    reason=reason)
        supervisor = ShardedSupervisor(
            shards=default_shards(1, cache_dir=self.cache_dir),
            policy=self.policy, use_cache=self.use_cache,
            cache_dir=self.cache_dir)
        payloads = supervisor.run([point.spec for point in remaining],
                                  on_result=on_result,
                                  telemetry=self._telemetry)
        for point, payload in zip(remaining, payloads):
            self._results[point.index] = payload
            point.state = _DONE
            self._completed.add(point.key)
        for record in supervisor.events:
            fields = {k: v for k, v in record.items()
                      if k not in ("seq", "event")}
            self._event(record["event"], **fields)

    # ------------------------------------------------------------------
    # the coordinator loop

    def run(self, specs: Sequence[RunSpec],
            on_result: Optional[Callable] = None,
            telemetry: bool = False) -> list:
        """Run every spec to completion; payloads in spec order.

        ``on_result(spec, result)`` fires in this process, exactly once
        per point, as completions arrive — the journal hook that keeps
        the coordinator the journal's sole writer.  Raises
        :class:`SweepFailure` when a point exhausts
        ``policy.max_retries``.
        """
        self._telemetry = telemetry
        self._results: list = [None] * len(specs)
        self._points = [_Point(index, spec)
                        for index, spec in enumerate(specs)]
        self._by_key = {point.key: point for point in self._points}
        self._completed = set()
        if not self._points:
            return []
        if serial_forced() and self._given_transports is None:
            # REPRO_SERIAL forbids spawning worker processes entirely;
            # the supervisor's serial path honors the same contract.
            self._run_fallback(on_result, "serial-forced")
            return self._results
        now = time.monotonic()
        self._spawn(now)
        try:
            self._loop(on_result)
            # One last drain so frames that raced the finish line
            # (duplicate replays of the final point, trailing
            # heartbeats) still land in the event timeline.
            self._poll(time.monotonic(), on_result)
        finally:
            self._shutdown()
        return self._results

    def _loop(self, on_result: Optional[Callable]) -> None:
        grace_deadline: Optional[float] = None
        while True:
            if all(point.state == _DONE for point in self._points):
                return
            now = time.monotonic()
            self._accept_pending(now)
            self._poll(now, on_result)
            self._scan_liveness(now)
            self._scan_leases(now)
            if not self._usable():
                if self.fabric.bind is not None:
                    # Bind mode has no local fleet: external workers are
                    # still joining (or rejoining after a partition).
                    # Wait out the accept grace before degrading.
                    if grace_deadline is None:
                        grace_deadline = now + self.fabric.accept_grace_s
                    if now < grace_deadline:
                        time.sleep(self.fabric.tick_s)
                        continue
                self._run_fallback(on_result, "all workers lost")
                return
            grace_deadline = None
            self._assign(now)
            time.sleep(self.fabric.tick_s)


def _encode_spec(spec: RunSpec) -> str:
    """Late import shim so protocol stays import-light in the worker."""
    from repro.fabric.protocol import encode_spec

    return encode_spec(spec)


# ----------------------------------------------------------------------
# run_many / sweep shaped entry points


def fabric_run_many(specs: Sequence[RunSpec],
                    workers: int = 2, transport: str = "stdio",
                    policy: Optional[SupervisorPolicy] = None,
                    fabric: Optional[FabricPolicy] = None,
                    chaos: Optional[FabricChaosPolicy] = None,
                    use_cache: bool = True,
                    cache_dir: Optional[Union[str, Path]] = None,
                    on_result: Optional[Callable] = None,
                    coordinator: Optional[FabricCoordinator] = None
                    ) -> list[ConfigResult]:
    """:func:`~repro.experiments.parallel.run_many` across the fabric.

    Pass ``coordinator`` to keep the instance (its ``events`` and
    ``worker_health()`` feed the degradation timeline of sweep
    reports); otherwise one is built from ``workers``/``transport``
    plus the optional policies.
    """
    if coordinator is None:
        if fabric is None:
            fabric = FabricPolicy(workers=workers, transport=transport)
        coordinator = FabricCoordinator(policy=policy, fabric=fabric,
                                        chaos=chaos, use_cache=use_cache,
                                        cache_dir=cache_dir)
    return coordinator.run(specs, on_result=on_result, telemetry=False)


def fabric_run_telemetry(specs: Sequence[RunSpec],
                         workers: int = 2, transport: str = "stdio",
                         policy: Optional[SupervisorPolicy] = None,
                         fabric: Optional[FabricPolicy] = None,
                         chaos: Optional[FabricChaosPolicy] = None,
                         use_cache: bool = True,
                         cache_dir: Optional[Union[str, Path]] = None,
                         coordinator: Optional[FabricCoordinator] = None
                         ) -> list[PointTelemetry]:
    """:func:`~repro.experiments.parallel.run_telemetry` across the fabric.

    Every point's :class:`PointTelemetry` is stamped with the worker id
    that produced it (empty for local-fallback points), and — exactly
    like the local paths — per-point counters merge into the parent's
    active metrics registry.
    """
    if coordinator is None:
        if fabric is None:
            fabric = FabricPolicy(workers=workers, transport=transport)
        coordinator = FabricCoordinator(policy=policy, fabric=fabric,
                                        chaos=chaos, use_cache=use_cache,
                                        cache_dir=cache_dir)
    points = coordinator.run(specs, telemetry=True)
    registry = _metrics.current_registry()
    if registry is not None:
        for point in points:
            if point is not None and point.metrics:
                registry.merge(point.metrics)
    return points


def fabric_sweep(warehouse_grid, processors: int,
                 machine=None, settings=None, clients_fn=None,
                 use_cache: bool = True, faults=None,
                 journal: Optional[Union[SweepJournal, str, Path]] = None,
                 cache_dir: Optional[Union[str, Path]] = None,
                 workers: int = 2, transport: str = "stdio",
                 policy: Optional[SupervisorPolicy] = None,
                 fabric: Optional[FabricPolicy] = None,
                 chaos: Optional[FabricChaosPolicy] = None,
                 coordinator: Optional[FabricCoordinator] = None,
                 workload=None) -> list[ConfigResult]:
    """A warehouse sweep across the fabric, journal as merge point.

    Mirrors :func:`~repro.experiments.supervisor.supervised_sweep`:
    points already journaled are reused without leasing, the rest are
    distributed across the workers, and every completion is journaled
    from the coordinator — one deduplicated append stream no matter how
    many workers (or re-leases) produced the results.  The journal's
    owner lock is held for the duration: a second live coordinator on
    the same journal raises
    :class:`~repro.experiments.resilience.JournalOwnershipError`, while
    a *crashed* coordinator's stale lock is broken automatically — the
    crash-resume path (``repro sweep --workers N --resume``) re-reads
    the journal, re-leases only the missing points, and appends each
    exactly once.
    """
    from repro.experiments.configs import DEFAULT_SETTINGS
    from repro.hw.machine import XEON_MP_QUAD

    machine = machine if machine is not None else XEON_MP_QUAD
    settings = settings if settings is not None else DEFAULT_SETTINGS
    if journal is not None and not isinstance(journal, SweepJournal):
        journal = SweepJournal(journal)

    specs = []
    for warehouses in warehouse_grid:
        clients = (clients_fn(warehouses, processors)
                   if clients_fn is not None else None)
        specs.append(RunSpec(warehouses=warehouses, processors=processors,
                             clients=clients, machine=machine,
                             settings=settings, faults=faults,
                             workload=workload))

    if journal is not None:
        journal.acquire()
    try:
        completed = journal.load() if journal is not None else {}
        pending = [spec for spec in specs if spec.key() not in completed]

        def journal_point(spec: RunSpec, result: ConfigResult) -> None:
            if journal is not None:
                journal.record(spec.key(), result)

        fresh = fabric_run_many(pending, workers=workers,
                                transport=transport,
                                policy=policy, fabric=fabric, chaos=chaos,
                                use_cache=use_cache, cache_dir=cache_dir,
                                on_result=journal_point,
                                coordinator=coordinator)
        by_key = dict(completed)
        for spec, result in zip(pending, fresh):
            by_key[spec.key()] = result
        return [by_key[spec.key()] for spec in specs]
    finally:
        if journal is not None:
            journal.release()


__all__ = [
    "FabricCoordinator",
    "FabricPolicy",
    "TRANSPORTS",
    "WorkerHealth",
    "fabric_run_many",
    "fabric_run_telemetry",
    "fabric_sweep",
]
