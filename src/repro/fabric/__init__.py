"""Distributed sweep fabric: coordinator/worker execution over transports.

The third step of the execution ladder (DESIGN.md §12): PR 2's process
pool fans a sweep across local CPUs, PR 5's :class:`ShardedSupervisor`
supervises local worker pools per shard, and this package takes the
"hosts, not just cores" step — a coordinator leases :class:`RunSpec`
points to remote worker processes over pluggable transports (stdio
subprocess pipes, TCP sockets), workers stream results plus serialized
telemetry back, and the coordinator remains the *sole* writer to the
:class:`~repro.experiments.resilience.SweepJournal`.

Robustness is the headline contract:

- time-bounded **leases** with automatic expiry and requeue;
- **heartbeat** liveness detection with a configurable timeout;
- per-point retry/backoff reusing
  :class:`~repro.experiments.supervisor.SupervisorPolicy` and
  :func:`~repro.experiments.supervisor.backoff_delay`;
- a protocol-version **handshake** over schema-checked, length-prefixed
  JSON frames — a malformed frame quarantines the worker, not the sweep;
- journal appends **idempotent by config key**, so a re-leased point
  that completes twice is deduplicated, never double-counted;
- graceful degradation: when every remote worker is lost the sweep
  finishes on a local
  :class:`~repro.experiments.supervisor.ShardedSupervisor` fallback.

Because every point is a pure function of its spec, none of this can
change results: fabric sweeps are bit-identical to serial sweeps, which
the deterministic :class:`~repro.fabric.chaos.FabricChaosPolicy` tests
(worker SIGKILL mid-point, heartbeat blackhole, corrupt frames,
duplicate-completion replay) pin in ``tests/fabric/``.
"""

from repro.fabric.chaos import FabricChaosPolicy
from repro.fabric.coordinator import (
    FabricCoordinator,
    FabricPolicy,
    WorkerHealth,
    fabric_run_many,
    fabric_run_telemetry,
    fabric_sweep,
)
from repro.fabric.protocol import (
    PROTOCOL_VERSION,
    FrameError,
    decode_frame,
    encode_frame,
    read_frame,
    write_frame,
)
from repro.fabric.transports import (
    StdioTransport,
    TcpListener,
    TcpTransport,
    WorkerTransport,
)

__all__ = [
    "FabricChaosPolicy",
    "FabricCoordinator",
    "FabricPolicy",
    "FrameError",
    "PROTOCOL_VERSION",
    "StdioTransport",
    "TcpListener",
    "TcpTransport",
    "WorkerHealth",
    "WorkerTransport",
    "decode_frame",
    "encode_frame",
    "fabric_run_many",
    "fabric_run_telemetry",
    "fabric_sweep",
    "read_frame",
    "write_frame",
]
