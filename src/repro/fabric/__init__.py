"""Distributed sweep fabric: coordinator/worker execution over transports.

The third step of the execution ladder (DESIGN.md §12): PR 2's process
pool fans a sweep across local CPUs, PR 5's :class:`ShardedSupervisor`
supervises local worker pools per shard, and this package takes the
"hosts, not just cores" step — a coordinator leases :class:`RunSpec`
points to remote worker processes over pluggable transports (stdio
subprocess pipes, TCP sockets), workers stream results plus serialized
telemetry back, and the coordinator remains the *sole* writer to the
:class:`~repro.experiments.resilience.SweepJournal`.

Robustness is the headline contract:

- time-bounded **leases** with automatic expiry and requeue;
- **heartbeat** liveness detection with a configurable timeout;
- per-point retry/backoff reusing
  :class:`~repro.experiments.supervisor.SupervisorPolicy` and
  :func:`~repro.experiments.supervisor.backoff_delay`;
- a protocol-version **handshake** over schema-checked, length-prefixed
  JSON frames — a malformed frame quarantines the worker, not the sweep;
- journal appends **idempotent by config key**, so a re-leased point
  that completes twice is deduplicated, never double-counted;
- graceful degradation: when every remote worker is lost the sweep
  finishes on a local
  :class:`~repro.experiments.supervisor.ShardedSupervisor` fallback.

Multi-host hardening (DESIGN.md §16) layers on top:

- **authenticated framing** — with a shared secret
  (``--fabric-secret`` file or ``REPRO_FABRIC_SECRET``) every frame
  carries an HMAC-SHA256 signature over ``nonce || sequence || body``
  (:class:`~repro.fabric.protocol.FrameSigner`); the coordinator deals
  the session nonce in a ``challenge`` frame, so forged, replayed, or
  cross-sweep frames are rejected
  (:class:`~repro.fabric.protocol.FrameAuthError`,
  ``fabric.auth.rejected``) without failing the sweep;
- **worker reconnect** — ``repro fabric-worker --connect host:port``
  supervises sessions across lost channels with deterministic jittered
  backoff; the session token issued in ``welcome`` lets the
  coordinator rebind a rejoining worker and re-validate its in-flight
  lease instead of double-executing it (``fabric.leases.revalidated``);
- **coordinator crash-resume** — the journal's owner lock is held for
  the sweep; a killed coordinator's stale lock is broken by
  ``repro sweep --resume``, which re-leases only unjournaled points;
- **read deadlines** — TCP readers bound the time a partially received
  frame may stall, so half-open sockets and slow-loris peers are
  quarantined instead of wedging a reader thread.

Because every point is a pure function of its spec, none of this can
change results: fabric sweeps are bit-identical to serial sweeps, which
the deterministic :class:`~repro.fabric.chaos.FabricChaosPolicy` tests
(worker SIGKILL mid-point, heartbeat blackhole, corrupt frames,
duplicate-completion replay, latency, half-open sockets, slow-loris
frames, asymmetric partitions, signed-frame replay, reconnect churn)
pin in ``tests/fabric/``.
"""

from repro.fabric.chaos import FabricChaosPolicy
from repro.fabric.coordinator import (
    FabricCoordinator,
    FabricPolicy,
    WorkerHealth,
    fabric_run_many,
    fabric_run_telemetry,
    fabric_sweep,
)
from repro.fabric.protocol import (
    PROTOCOL_VERSION,
    FrameAuthError,
    FrameError,
    FrameSigner,
    decode_frame,
    encode_frame,
    read_frame,
    resolve_fabric_secret,
    write_frame,
)
from repro.fabric.transports import (
    StdioTransport,
    TcpListener,
    TcpTransport,
    WorkerTransport,
)


def __getattr__(name):
    # Lazy: importing repro.fabric.worker here would shadow the
    # ``python -m repro.fabric.worker`` runpy entry in every spawned
    # worker process (sys.modules double-import warning).
    if name == "run_with_reconnect":
        from repro.fabric.worker import run_with_reconnect

        return run_with_reconnect
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "FabricChaosPolicy",
    "FabricCoordinator",
    "FabricPolicy",
    "FrameAuthError",
    "FrameError",
    "FrameSigner",
    "PROTOCOL_VERSION",
    "StdioTransport",
    "TcpListener",
    "TcpTransport",
    "WorkerHealth",
    "WorkerTransport",
    "decode_frame",
    "encode_frame",
    "fabric_run_many",
    "fabric_run_telemetry",
    "fabric_sweep",
    "read_frame",
    "resolve_fabric_secret",
    "run_with_reconnect",
    "write_frame",
]
