"""The fabric worker process: lease points, run them, stream results.

Launched by the coordinator as ``python -m repro.fabric.worker`` (see
:mod:`repro.fabric.transports`), or supervised across reconnects by
``repro fabric-worker`` (:func:`run_with_reconnect`).  Lifecycle:

1. connect the framed channel — stdio (stdin/stdout pipes) by default,
   or TCP with ``--connect host:port``;
2. handshake: on an authenticated channel, first await the
   coordinator's ``challenge`` frame (verified under the bootstrap
   nonce) and adopt its session nonce; then send ``hello`` carrying
   the worker id, protocol version, hostname and pid — plus the
   session ``token`` and any still-held lease (``resuming``) when
   rejoining after a disconnect; exit on ``reject`` or silence;
3. start a daemon heartbeat thread sharing the send lock;
4. loop: for each ``lease``, run the point via
   :func:`~repro.experiments.parallel._run_spec_telemetry` (fresh
   tracer + metrics registry per point, exactly like a local pool
   worker), stamp its manifest with this worker's identity, and send a
   ``result`` frame carrying the serialized payloads plus their
   checksum — or an ``error`` frame when the point raises;
5. exit on ``shutdown`` or channel EOF.

Exit codes tell the supervisor loop what happened: ``0`` clean
shutdown, ``2`` handshake rejected, ``3`` malformed coordinator frame,
``5`` channel lost (the coordinator died or the network dropped —
reconnectable), ``6`` chaos-injected disconnect (also reconnectable).

On stdio, ``sys.stdout`` is rebound to stderr before anything else runs
so stray prints (from the simulation, from third-party code) can never
corrupt the frame stream — stdout is reserved exclusively for frames.

A :class:`~repro.fabric.chaos.FabricChaosPolicy` passed via ``--chaos``
makes the worker *hostile on purpose* (SIGKILL itself mid-point, go
dark on heartbeats, emit garbage frames, trickle slow-loris bytes,
drop leases behind an asymmetric partition, replay signed frames,
drop the connection) so the coordinator's recovery paths are exercised
by real processes, not mocks.
"""

from __future__ import annotations

import argparse
import os
import signal
import socket as socket_module
import sys
import threading
import time
import traceback
from typing import BinaryIO, Optional

from repro.experiments.parallel import _run_spec_telemetry
from repro.experiments.records import payload_checksum
from repro.experiments.supervisor import SupervisorPolicy, backoff_delay
from repro.fabric.chaos import FabricChaosPolicy
from repro.fabric.protocol import (
    HEADER_BYTES,
    PROTOCOL_VERSION,
    FrameError,
    FrameSigner,
    decode_spec,
    encode_frame,
    read_frame,
    resolve_fabric_secret,
    write_frame,
)

#: Exit code for a lost channel (coordinator gone) — reconnectable.
EXIT_CHANNEL_LOST = 5

#: Exit code for a chaos-injected disconnect — reconnectable.
EXIT_CHAOS_DISCONNECT = 6


class _ChaosDisconnect(Exception):
    """Raised by the ``disconnect`` chaos action to drop the channel."""


class _Heartbeat(threading.Thread):
    """Daemon thread sending ``heartbeat`` frames at a fixed interval."""

    def __init__(self, stream: BinaryIO, lock: threading.Lock,
                 worker_id: str, interval_s: float,
                 signer: Optional[FrameSigner] = None):
        super().__init__(daemon=True, name="fabric-heartbeat")
        self._stream = stream
        self._lock = lock
        self._worker_id = worker_id
        self._interval_s = interval_s
        self._signer = signer
        self._stop = threading.Event()
        #: Set by chaos ``blackhole``/``halfopen`` to silence the worker.
        self.suppressed = False

    def run(self) -> None:
        """Beat until stopped or the channel dies."""
        while not self._stop.wait(self._interval_s):
            if self.suppressed:
                continue
            try:
                with self._lock:
                    write_frame(self._stream,
                                {"type": "heartbeat",
                                 "worker_id": self._worker_id},
                                signer=self._signer)
            except (OSError, ValueError):
                return

    def stop(self) -> None:
        """Ask the thread to exit at its next tick."""
        self._stop.set()


class FabricWorker:
    """One worker's session over an already-connected framed channel.

    ``signer`` enables authenticated framing (the coordinator must deal
    a challenge before anything else).  ``token``/``pending`` carry a
    previous session's identity and unsent result across a reconnect:
    the token rides in the hello so the coordinator can rebind this
    worker's runtime, ``pending`` names the lease still held (sent as
    the hello's ``resuming`` field, then flushed right after welcome).
    """

    def __init__(self, rx: BinaryIO, tx: BinaryIO, worker_id: str,
                 heartbeat_s: float = 0.25,
                 chaos: Optional[FabricChaosPolicy] = None,
                 protocol: int = PROTOCOL_VERSION,
                 signer: Optional[FrameSigner] = None,
                 token: Optional[str] = None,
                 pending: Optional[dict] = None):
        self.rx = rx
        self.tx = tx
        self.worker_id = worker_id
        self.heartbeat_s = heartbeat_s
        self.chaos = chaos
        self.protocol = protocol
        self.signer = signer
        self.token = token
        #: ``{"lease_id", "key", "frame"}`` for a result the previous
        #: session finished but could not deliver.
        self.pending = pending
        self.host = socket_module.gethostname()
        self._send_lock = threading.Lock()
        self._heartbeat: Optional[_Heartbeat] = None

    def _send(self, message: dict) -> None:
        """Write one frame under the shared send lock."""
        with self._send_lock:
            write_frame(self.tx, message, signer=self.signer)

    def _send_raw(self, payload: bytes) -> None:
        """Write raw bytes (chaos ``corrupt``/``sloworis`` — no framing)."""
        with self._send_lock:
            self.tx.write(payload)
            self.tx.flush()

    def handshake(self) -> bool:
        """Challenge → hello → welcome; False when rejected or cut off.

        On a signed channel the coordinator speaks first: its
        ``challenge`` frame (verified under the empty bootstrap nonce)
        deals the session nonce every later signature is keyed on.
        """
        if self.signer is not None:
            try:
                challenge = read_frame(self.rx, signer=self.signer)
            except FrameError:
                return False
            if challenge is None or challenge.get("type") != "challenge":
                return False
            self.signer.nonce = challenge["nonce"]
        hello = {"type": "hello", "worker_id": self.worker_id,
                 "protocol": self.protocol, "host": self.host,
                 "pid": os.getpid()}
        if self.token is not None:
            hello["token"] = self.token
        if self.pending is not None:
            hello["resuming"] = {"lease_id": self.pending["lease_id"],
                                 "key": self.pending["key"]}
        self._send(hello)
        try:
            answer = read_frame(self.rx, signer=self.signer)
        except FrameError:
            return False
        if answer is None or answer.get("type") != "welcome":
            return False
        token = answer.get("token")
        if isinstance(token, str):
            self.token = token
        return True

    def _flush_pending(self) -> None:
        """Deliver the previous session's unsent result, if any."""
        if self.pending is None:
            return
        frame = self.pending.get("frame")
        self.pending = None
        if frame is not None:
            self._send(frame)

    def _run_lease(self, message: dict) -> None:
        """Run one leased point and stream its result (or error) back.

        Chaos hooks fire around the real computation: ``kill`` replaces
        the result with a SIGKILL, ``blackhole`` silences heartbeats and
        delays the (stale by then) result, ``corrupt`` prefixes it with
        a garbage frame, ``duplicate`` sends it twice, ``latency``
        delays the send, ``halfopen`` goes completely silent without
        closing the socket, ``sloworis`` trickles a partial frame
        slower than the read deadline, ``partition`` drops the lease on
        the floor while heartbeats keep flowing, ``replay`` re-sends
        the identical signed result bytes, ``disconnect`` drops the
        channel after the result so the supervisor loop must rejoin.
        """
        lease_id = message["lease_id"]
        key = message["key"]
        attempt = int(message.get("attempt", 0))
        action = (self.chaos.action(key, attempt)
                  if self.chaos is not None else None)
        if action == "kill":
            # Die the hard way, mid-point: no frames, no exit handlers —
            # the coordinator sees EOF and must re-lease.
            os.kill(os.getpid(), signal.SIGKILL)
        if action == "partition":
            # Asymmetric partition: the lease never "arrived", but the
            # heartbeat thread keeps flowing — the coordinator must
            # expire the lease, not wait on a worker that looks alive.
            return
        if action == "halfopen":
            # Go dark without FIN: no heartbeats, no frames, socket
            # open.  Heartbeat liveness (not a blocked read) must
            # surface the loss; linger briefly so the coordinator
            # observes a truly half-open peer, then die without FIN.
            if self._heartbeat is not None:
                self._heartbeat.suppressed = True
            time.sleep(self.chaos.delay_s)
            os.kill(os.getpid(), signal.SIGKILL)
        if action == "sloworis":
            # Trickle a frame: header plus one byte, then stall past
            # the transport's read deadline.  The reader must declare
            # the frame stalled and quarantine us.
            if self._heartbeat is not None:
                self._heartbeat.suppressed = True
            self._send_raw((64).to_bytes(HEADER_BYTES, "big") + b"\x7b")
            time.sleep(self.chaos.delay_s)
            return
        if action == "blackhole" and self._heartbeat is not None:
            self._heartbeat.suppressed = True
        try:
            spec = decode_spec(message["spec"])
            cache_dir = (message.get("cache_dir")
                         or os.environ.get("REPRO_CACHE_DIR"))
            point = _run_spec_telemetry(spec, cache_dir,
                                        bool(message["use_cache"]))
        except FrameError:
            raise
        except Exception:
            self._send({"type": "error", "lease_id": lease_id, "key": key,
                        "error": traceback.format_exc(limit=20)})
            return
        manifest = None
        if point.manifest is not None:
            manifest = point.manifest.to_dict()
            manifest["worker_id"] = self.worker_id
            manifest["worker_host"] = self.host
        payload = point.result.to_dict()
        result = {"type": "result", "lease_id": lease_id, "key": key,
                  "result": payload, "checksum": payload_checksum(payload),
                  "manifest": manifest, "trace": point.trace or {},
                  "metrics": point.metrics or {}}
        if action == "latency":
            # A slow link, not a dead one: leases must tolerate it.
            time.sleep(self.chaos.latency_s)
        if action == "blackhole":
            # Sit on the finished result past the heartbeat timeout so
            # the coordinator declares this worker dead and re-leases;
            # then send the stale completion to exercise dedup.
            time.sleep(self.chaos.delay_s)
            if self._heartbeat is not None:
                self._heartbeat.suppressed = False
        if action == "corrupt":
            self._send_raw(b"\xff\xfe\xfd\xfcnot-a-frame")
            return
        if action == "replay":
            # Re-send the *identical* wire bytes: on a signed channel
            # the second copy carries a stale sequence number and must
            # be rejected (fabric.auth.rejected) without losing the
            # first, already-recorded completion.
            with self._send_lock:
                frame = encode_frame(result, signer=self.signer)
                self.tx.write(frame)
                self.tx.flush()
                self.tx.write(frame)
                self.tx.flush()
            return
        try:
            self._send(result)
        except (OSError, ValueError):
            # The channel died with a finished result in hand: stash it
            # so a reconnected session can deliver it exactly once.
            self.pending = {"lease_id": lease_id, "key": key,
                            "frame": result}
            raise OSError("channel lost with undelivered result")
        if action == "duplicate":
            self._send(result)
        if action == "disconnect":
            raise _ChaosDisconnect

    def serve(self) -> int:
        """Run the session to completion; returns the exit code."""
        try:
            if not self.handshake():
                return 2
        except (OSError, ValueError):
            # Channel cut mid-handshake (peer reset, coordinator gone):
            # reconnectable, not a rejection.
            return EXIT_CHANNEL_LOST
        self._heartbeat = _Heartbeat(self.tx, self._send_lock,
                                     self.worker_id, self.heartbeat_s,
                                     signer=self.signer)
        self._heartbeat.start()
        try:
            self._flush_pending()
            while True:
                try:
                    message = read_frame(self.rx, signer=self.signer)
                except FrameError:
                    return 3
                if message is None:
                    # EOF without a shutdown frame: the coordinator died
                    # or the network dropped — reconnectable.
                    return EXIT_CHANNEL_LOST
                if message.get("type") == "shutdown":
                    return 0
                if message.get("type") == "lease":
                    self._run_lease(message)
        except _ChaosDisconnect:
            return EXIT_CHAOS_DISCONNECT
        except (OSError, ValueError):
            # Channel died under us (coordinator gone): reconnectable.
            return EXIT_CHANNEL_LOST
        finally:
            self._heartbeat.stop()


def _connect_tcp(address: str
                 ) -> tuple[socket_module.socket, BinaryIO, BinaryIO]:
    """Dial the coordinator's listener; returns (sock, rx, tx)."""
    host, _, port = address.rpartition(":")
    sock = socket_module.create_connection((host, int(port)), timeout=30.0)
    sock.settimeout(None)
    return sock, sock.makefile("rb"), sock.makefile("wb")


def run_with_reconnect(address: str, worker_id: str,
                       heartbeat_s: float = 0.25,
                       chaos: Optional[FabricChaosPolicy] = None,
                       protocol: int = PROTOCOL_VERSION,
                       secret: Optional[str] = None,
                       max_reconnects: int = 10,
                       policy: Optional[SupervisorPolicy] = None) -> int:
    """Serve sessions against ``address``, rejoining after disconnects.

    The supervisor loop behind ``repro fabric-worker``: each lost
    channel (coordinator crash, network drop, chaos disconnect) or
    refused dial costs one reconnect attempt and a deterministic
    jittered backoff (:func:`~repro.experiments.supervisor.backoff_delay`
    keyed on the worker id — two workers rejoining the same coordinator
    desynchronize, yet a replay is identical).  The session token and
    any undelivered result carry across attempts so the coordinator
    re-validates the worker's lease instead of double-executing it.
    Returns the final session's exit code (``0`` on clean shutdown).
    """
    policy = policy or SupervisorPolicy()
    token: Optional[str] = None
    pending: Optional[dict] = None
    attempt = 0
    code = EXIT_CHANNEL_LOST
    while True:
        worker = None
        try:
            sock, rx, tx = _connect_tcp(address)
        except OSError:
            code = EXIT_CHANNEL_LOST
        else:
            signer = FrameSigner(secret) if secret is not None else None
            worker = FabricWorker(rx, tx, worker_id,
                                  heartbeat_s=heartbeat_s, chaos=chaos,
                                  protocol=protocol, signer=signer,
                                  token=token, pending=pending)
            code = worker.serve()
            token = worker.token or token
            pending = worker.pending
            for stream in (rx, tx):
                try:
                    stream.close()
                except OSError:
                    pass
            try:
                sock.close()
            except OSError:
                pass
        if code not in (EXIT_CHANNEL_LOST, EXIT_CHAOS_DISCONNECT):
            return code
        attempt += 1
        if attempt > max_reconnects:
            print(f"fabric-worker {worker_id}: giving up after "
                  f"{max_reconnects} reconnect attempts", file=sys.stderr)
            return code
        time.sleep(backoff_delay(worker_id, attempt, policy))


def main(argv: Optional[list] = None) -> int:
    """Entry point for ``python -m repro.fabric.worker``."""
    parser = argparse.ArgumentParser(
        prog="repro.fabric.worker",
        description="fabric worker process (launched by the coordinator)")
    parser.add_argument("--worker-id", required=True,
                        help="identity announced in the hello frame")
    parser.add_argument("--connect", default=None, metavar="HOST:PORT",
                        help="dial a TCP coordinator instead of stdio")
    parser.add_argument("--heartbeat", type=float, default=0.25,
                        help="seconds between heartbeat frames")
    parser.add_argument("--chaos", default=None,
                        help="FabricChaosPolicy as JSON (test-only)")
    parser.add_argument("--protocol", type=int, default=PROTOCOL_VERSION,
                        help="override the announced protocol version "
                             "(handshake-rejection tests)")
    parser.add_argument("--secret-file", default=None, metavar="PATH",
                        help="file holding the shared fabric secret "
                             "(default: $REPRO_FABRIC_SECRET)")
    parser.add_argument("--max-reconnects", type=int, default=0,
                        metavar="N",
                        help="TCP only: rejoin the coordinator up to N "
                             "times after a lost channel (default 0)")
    args = parser.parse_args(argv)

    try:
        secret = resolve_fabric_secret(args.secret_file)
    except ValueError as error:
        print(f"fabric-worker: {error}", file=sys.stderr)
        return 2

    chaos = (FabricChaosPolicy.from_json(args.chaos)
             if args.chaos else None)

    if args.connect is not None:
        if args.max_reconnects > 0:
            return run_with_reconnect(args.connect, args.worker_id,
                                      heartbeat_s=args.heartbeat,
                                      chaos=chaos, protocol=args.protocol,
                                      secret=secret,
                                      max_reconnects=args.max_reconnects)
        _sock, rx, tx = _connect_tcp(args.connect)
    else:
        rx, tx = sys.stdin.buffer, sys.stdout.buffer
        # stdout carries frames and nothing else: reroute every print
        # (ours or the simulation's) to stderr.
        sys.stdout = sys.stderr

    signer = FrameSigner(secret) if secret is not None else None
    worker = FabricWorker(rx, tx, args.worker_id,
                          heartbeat_s=args.heartbeat, chaos=chaos,
                          protocol=args.protocol, signer=signer)
    code = worker.serve()
    # Without a supervisor loop a lost channel is a plain exit, exactly
    # as before reconnect support existed.
    return 0 if code == EXIT_CHANNEL_LOST else code


if __name__ == "__main__":  # pragma: no cover - subprocess entry
    sys.exit(main())
