"""The fabric worker process: lease points, run them, stream results.

Launched by the coordinator as ``python -m repro.fabric.worker`` (see
:mod:`repro.fabric.transports`).  Lifecycle:

1. connect the framed channel — stdio (stdin/stdout pipes) by default,
   or TCP with ``--connect host:port``;
2. handshake: send ``hello`` carrying the worker id, protocol version,
   hostname and pid; exit on ``reject`` or silence;
3. start a daemon heartbeat thread sharing the send lock;
4. loop: for each ``lease``, run the point via
   :func:`~repro.experiments.parallel._run_spec_telemetry` (fresh
   tracer + metrics registry per point, exactly like a local pool
   worker), stamp its manifest with this worker's identity, and send a
   ``result`` frame carrying the serialized payloads plus their
   checksum — or an ``error`` frame when the point raises;
5. exit on ``shutdown`` or channel EOF.

On stdio, ``sys.stdout`` is rebound to stderr before anything else runs
so stray prints (from the simulation, from third-party code) can never
corrupt the frame stream — stdout is reserved exclusively for frames.

A :class:`~repro.fabric.chaos.FabricChaosPolicy` passed via ``--chaos``
makes the worker *hostile on purpose* (SIGKILL itself mid-point, go
dark on heartbeats, emit garbage frames, replay completions) so the
coordinator's recovery paths are exercised by real processes, not
mocks.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import socket as socket_module
import sys
import threading
import time
import traceback
from typing import BinaryIO, Optional

from repro.experiments.parallel import _run_spec_telemetry
from repro.experiments.records import payload_checksum
from repro.fabric.chaos import FabricChaosPolicy
from repro.fabric.protocol import (
    PROTOCOL_VERSION,
    FrameError,
    decode_spec,
    read_frame,
    write_frame,
)


class _Heartbeat(threading.Thread):
    """Daemon thread sending ``heartbeat`` frames at a fixed interval."""

    def __init__(self, stream: BinaryIO, lock: threading.Lock,
                 worker_id: str, interval_s: float):
        super().__init__(daemon=True, name="fabric-heartbeat")
        self._stream = stream
        self._lock = lock
        self._worker_id = worker_id
        self._interval_s = interval_s
        self._stop = threading.Event()
        #: Set by chaos ``blackhole`` to silence the worker.
        self.suppressed = False

    def run(self) -> None:
        """Beat until stopped or the channel dies."""
        while not self._stop.wait(self._interval_s):
            if self.suppressed:
                continue
            try:
                with self._lock:
                    write_frame(self._stream,
                                {"type": "heartbeat",
                                 "worker_id": self._worker_id})
            except (OSError, ValueError):
                return

    def stop(self) -> None:
        """Ask the thread to exit at its next tick."""
        self._stop.set()


class FabricWorker:
    """One worker's session over an already-connected framed channel."""

    def __init__(self, rx: BinaryIO, tx: BinaryIO, worker_id: str,
                 heartbeat_s: float = 0.25,
                 chaos: Optional[FabricChaosPolicy] = None,
                 protocol: int = PROTOCOL_VERSION):
        self.rx = rx
        self.tx = tx
        self.worker_id = worker_id
        self.heartbeat_s = heartbeat_s
        self.chaos = chaos
        self.protocol = protocol
        self.host = socket_module.gethostname()
        self._send_lock = threading.Lock()
        self._heartbeat: Optional[_Heartbeat] = None

    def _send(self, message: dict) -> None:
        """Write one frame under the shared send lock."""
        with self._send_lock:
            write_frame(self.tx, message)

    def _send_raw(self, payload: bytes) -> None:
        """Write raw bytes (chaos ``corrupt`` only — bypasses framing)."""
        with self._send_lock:
            self.tx.write(payload)
            self.tx.flush()

    def handshake(self) -> bool:
        """Send hello, await welcome; False when rejected or cut off."""
        self._send({"type": "hello", "worker_id": self.worker_id,
                    "protocol": self.protocol, "host": self.host,
                    "pid": os.getpid()})
        try:
            answer = read_frame(self.rx)
        except FrameError:
            return False
        return answer is not None and answer.get("type") == "welcome"

    def _run_lease(self, message: dict) -> None:
        """Run one leased point and stream its result (or error) back.

        Chaos hooks fire around the real computation: ``kill`` replaces
        the result with a SIGKILL, ``blackhole`` silences heartbeats and
        delays the (stale by then) result, ``corrupt`` prefixes it with
        a garbage frame, ``duplicate`` sends it twice.
        """
        lease_id = message["lease_id"]
        key = message["key"]
        attempt = int(message.get("attempt", 0))
        action = (self.chaos.action(key, attempt)
                  if self.chaos is not None else None)
        if action == "kill":
            # Die the hard way, mid-point: no frames, no exit handlers —
            # the coordinator sees EOF and must re-lease.
            os.kill(os.getpid(), signal.SIGKILL)
        if action == "blackhole" and self._heartbeat is not None:
            self._heartbeat.suppressed = True
        try:
            spec = decode_spec(message["spec"])
            cache_dir = (message.get("cache_dir")
                         or os.environ.get("REPRO_CACHE_DIR"))
            point = _run_spec_telemetry(spec, cache_dir,
                                        bool(message["use_cache"]))
        except FrameError:
            raise
        except Exception:
            self._send({"type": "error", "lease_id": lease_id, "key": key,
                        "error": traceback.format_exc(limit=20)})
            return
        manifest = None
        if point.manifest is not None:
            manifest = point.manifest.to_dict()
            manifest["worker_id"] = self.worker_id
            manifest["worker_host"] = self.host
        payload = point.result.to_dict()
        result = {"type": "result", "lease_id": lease_id, "key": key,
                  "result": payload, "checksum": payload_checksum(payload),
                  "manifest": manifest, "trace": point.trace or {},
                  "metrics": point.metrics or {}}
        if action == "blackhole":
            # Sit on the finished result past the heartbeat timeout so
            # the coordinator declares this worker dead and re-leases;
            # then send the stale completion to exercise dedup.
            time.sleep(self.chaos.delay_s)
            if self._heartbeat is not None:
                self._heartbeat.suppressed = False
        if action == "corrupt":
            self._send_raw(b"\xff\xfe\xfd\xfcnot-a-frame")
            return
        self._send(result)
        if action == "duplicate":
            self._send(result)

    def serve(self) -> int:
        """Run the session to completion; returns the exit code."""
        if not self.handshake():
            return 2
        self._heartbeat = _Heartbeat(self.tx, self._send_lock,
                                     self.worker_id, self.heartbeat_s)
        self._heartbeat.start()
        try:
            while True:
                try:
                    message = read_frame(self.rx)
                except FrameError:
                    return 3
                if message is None or message.get("type") == "shutdown":
                    return 0
                if message.get("type") == "lease":
                    self._run_lease(message)
        except (OSError, ValueError):
            # Channel died under us (coordinator gone): plain exit.
            return 0
        finally:
            self._heartbeat.stop()


def _connect_tcp(address: str) -> tuple[BinaryIO, BinaryIO]:
    """Dial the coordinator's listener; returns (rx, tx) streams."""
    host, _, port = address.rpartition(":")
    sock = socket_module.create_connection((host, int(port)), timeout=30.0)
    sock.settimeout(None)
    return sock.makefile("rb"), sock.makefile("wb")


def main(argv: Optional[list] = None) -> int:
    """Entry point for ``python -m repro.fabric.worker``."""
    parser = argparse.ArgumentParser(
        prog="repro.fabric.worker",
        description="fabric worker process (launched by the coordinator)")
    parser.add_argument("--worker-id", required=True,
                        help="identity announced in the hello frame")
    parser.add_argument("--connect", default=None, metavar="HOST:PORT",
                        help="dial a TCP coordinator instead of stdio")
    parser.add_argument("--heartbeat", type=float, default=0.25,
                        help="seconds between heartbeat frames")
    parser.add_argument("--chaos", default=None,
                        help="FabricChaosPolicy as JSON (test-only)")
    parser.add_argument("--protocol", type=int, default=PROTOCOL_VERSION,
                        help="override the announced protocol version "
                             "(handshake-rejection tests)")
    args = parser.parse_args(argv)

    if args.connect is not None:
        rx, tx = _connect_tcp(args.connect)
    else:
        rx, tx = sys.stdin.buffer, sys.stdout.buffer
        # stdout carries frames and nothing else: reroute every print
        # (ours or the simulation's) to stderr.
        sys.stdout = sys.stderr

    chaos = (FabricChaosPolicy.from_json(args.chaos)
             if args.chaos else None)
    worker = FabricWorker(rx, tx, args.worker_id,
                          heartbeat_s=args.heartbeat, chaos=chaos,
                          protocol=args.protocol)
    return worker.serve()


if __name__ == "__main__":  # pragma: no cover - subprocess entry
    sys.exit(main())
