"""Coordinator-side worker transports: stdio subprocess pipes and TCP.

A :class:`WorkerTransport` is the coordinator's handle on one remote
worker: a framed byte channel (:mod:`repro.fabric.protocol`) plus
lifecycle control.  Two concrete transports:

- :class:`StdioTransport` spawns ``python -m repro.fabric.worker`` as a
  child process and frames over its stdin/stdout pipes — zero
  configuration, works anywhere a subprocess does, and the natural
  first rung of the distributed ladder (the same shape mongodb-d4's
  message-channel experiment API uses);
- :class:`TcpTransport` frames over a connected socket accepted by a
  :class:`TcpListener` — the "other hosts" rung.  The bundled launcher
  still spawns local worker processes that dial back in (CI-friendly),
  but the listener accepts any worker that completes the handshake.

Each transport runs a daemon **reader thread** that decodes frames off
the channel into a queue; :meth:`WorkerTransport.poll` drains that
queue without blocking, returning message dicts interleaved with
:class:`~repro.fabric.protocol.FrameError` (malformed frame — the
quarantine signal), :class:`~repro.fabric.protocol.FrameAuthError`
(signature rejected — the auth-rejection signal), and
:data:`CHANNEL_CLOSED` (EOF — the worker-lost signal).  TCP readers
additionally enforce a **mid-frame read deadline**: once the first
byte of a frame has arrived, the rest must follow within
``read_deadline_s`` or the frame is declared stalled (a half-open
socket or slow-loris peer surfaces as a single-line
:class:`FrameError` instead of wedging the reader forever); idle time
*between* frames is unbounded — heartbeat liveness owns that budget.
``close`` joins the child with a bounded timeout and escalates
terminate → kill, so a wedged worker can never leak a zombie past the
coordinator's teardown (the same bounded-teardown contract as
:func:`repro.experiments.supervisor._kill_pool`).
"""

from __future__ import annotations

import os
import queue
import select
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path
from typing import Optional, Sequence

from repro.fabric.protocol import (
    HEADER_BYTES,
    MAX_FRAME_BYTES,
    SECRET_ENV,
    FrameError,
    FrameSigner,
    decode_frame,
    encode_frame,
    read_frame,
    write_frame,
)

#: Sentinel queued by the reader thread when the channel reaches EOF.
CHANNEL_CLOSED = object()

#: Default mid-frame read deadline for TCP transports (seconds).
DEFAULT_READ_DEADLINE_S = 10.0


def _src_root() -> Path:
    """The directory that must be on ``PYTHONPATH`` to import ``repro``."""
    import repro

    return Path(repro.__file__).resolve().parents[1]


def worker_environment(secret: Optional[str] = None) -> dict:
    """Spawn environment for a worker: parent env + importable ``repro``.

    ``secret``, when given, rides to locally spawned workers through
    :data:`~repro.fabric.protocol.SECRET_ENV` so both channel ends sign
    frames with the same key.  Remote workers bring their own secret
    (``repro fabric-worker --fabric-secret``).
    """
    env = dict(os.environ)
    src = str(_src_root())
    existing = env.get("PYTHONPATH")
    if existing:
        if src not in existing.split(os.pathsep):
            env["PYTHONPATH"] = src + os.pathsep + existing
    else:
        env["PYTHONPATH"] = src
    if secret is not None:
        env[SECRET_ENV] = secret
    return env


def worker_command(worker_id: str,
                   connect: Optional[str] = None,
                   heartbeat_s: Optional[float] = None,
                   chaos_json: Optional[str] = None,
                   protocol: Optional[int] = None) -> list[str]:
    """The ``python -m repro.fabric.worker`` argv for one worker.

    ``connect`` (``host:port``) selects the TCP transport; without it
    the worker frames over stdio.  ``protocol`` overrides the version
    the worker claims in its hello — a test hook for the handshake's
    rejection path.
    """
    command = [sys.executable, "-m", "repro.fabric.worker",
               "--worker-id", worker_id]
    if connect is not None:
        command += ["--connect", connect]
    if heartbeat_s is not None:
        command += ["--heartbeat", str(heartbeat_s)]
    if chaos_json:
        command += ["--chaos", chaos_json]
    if protocol is not None:
        command += ["--protocol", str(protocol)]
    return command


class _FrameReaderThread(threading.Thread):
    """Daemon thread decoding frames off a binary stream into a queue."""

    def __init__(self, stream, frames: "queue.Queue",
                 signer: Optional[FrameSigner] = None):
        super().__init__(daemon=True, name="fabric-frame-reader")
        self._stream = stream
        self._frames = frames
        self._signer = signer

    def run(self) -> None:
        """Decode frames until EOF or a malformed frame, then stop.

        A :class:`FrameError` is queued and the thread exits: once the
        framing is out of sync nothing later on the channel can be
        trusted, so the coordinator quarantines the worker anyway.
        """
        while True:
            try:
                frame = read_frame(self._stream, signer=self._signer)
            except FrameError as error:
                self._frames.put(error)
                return
            except (OSError, ValueError):
                # The descriptor was closed under the reader (teardown).
                self._frames.put(CHANNEL_CLOSED)
                return
            if frame is None:
                self._frames.put(CHANNEL_CLOSED)
                return
            self._frames.put(frame)


def _recv_exactly(sock: socket.socket, count: int,
                  deadline: Optional[float]) -> bytes:
    """Receive exactly ``count`` bytes, or as many as arrive before EOF.

    With a ``deadline`` (a ``time.monotonic`` instant), waits for
    readability with ``select`` so the socket's blocking mode is never
    disturbed; a stall past the deadline raises a single-line
    :class:`FrameError` — the slow-loris / half-open-socket signal.
    """
    data = bytearray()
    while len(data) < count:
        if deadline is not None:
            budget = deadline - time.monotonic()
            if budget <= 0 or not select.select([sock], [], [], budget)[0]:
                raise FrameError(
                    f"read deadline: frame stalled with {len(data)} of "
                    f"{count} bytes pending (half-open or slow-loris peer)")
        chunk = sock.recv(count - len(data))
        if not chunk:
            break
        data.extend(chunk)
    return bytes(data)


class _SocketReaderThread(threading.Thread):
    """Frame reader over a raw socket with a mid-frame read deadline.

    Blocks indefinitely *between* frames (an idle worker is the
    heartbeat machinery's problem, not the reader's), but once the
    first byte of a frame arrives the remainder must land within
    ``read_deadline_s`` — a peer that dies without FIN or trickles a
    frame byte-by-byte surfaces as a :class:`FrameError` instead of
    parking this thread (and the worker's coordinator-side state)
    forever.
    """

    def __init__(self, sock: socket.socket, frames: "queue.Queue",
                 signer: Optional[FrameSigner] = None,
                 read_deadline_s: float = DEFAULT_READ_DEADLINE_S):
        super().__init__(daemon=True, name="fabric-socket-reader")
        self._sock = sock
        self._frames = frames
        self._signer = signer
        self._read_deadline_s = read_deadline_s

    def _read_one(self) -> Optional[dict]:
        first = _recv_exactly(self._sock, 1, None)
        if not first:
            return None
        deadline = time.monotonic() + self._read_deadline_s
        header = first + _recv_exactly(self._sock, HEADER_BYTES - 1,
                                       deadline)
        if len(header) < HEADER_BYTES:
            raise FrameError(f"truncated frame header ({len(header)} of "
                             f"{HEADER_BYTES} bytes)")
        length = int.from_bytes(header, "big")
        if length <= 0 or length > MAX_FRAME_BYTES:
            raise FrameError(f"frame length {length} outside "
                             f"(0, {MAX_FRAME_BYTES}]")
        payload = _recv_exactly(self._sock, length, deadline)
        if len(payload) < length:
            raise FrameError(f"truncated frame payload ({len(payload)} "
                             f"of {length} bytes)")
        return decode_frame(payload, signer=self._signer)

    def run(self) -> None:
        """Decode frames until EOF, a bad frame, or a stalled frame."""
        while True:
            try:
                frame = self._read_one()
            except FrameError as error:
                self._frames.put(error)
                return
            except (OSError, ValueError):
                self._frames.put(CHANNEL_CLOSED)
                return
            if frame is None:
                self._frames.put(CHANNEL_CLOSED)
                return
            self._frames.put(frame)


class WorkerTransport:
    """One framed channel to a worker, with bounded lifecycle control.

    Subclasses provide the byte streams and process handle; this base
    owns the reader thread, the send lock, and the teardown ladder.
    """

    def __init__(self, name: str, signer: Optional[FrameSigner] = None):
        self.name = name
        self.signer = signer
        self._frames: "queue.Queue" = queue.Queue()
        self._send_lock = threading.Lock()
        self._reader: Optional[threading.Thread] = None
        self._closed = False
        self._send_broken = False

    # -- subclass surface ----------------------------------------------
    def _read_stream(self):
        """The binary stream frames are read from."""
        raise NotImplementedError

    def _write_stream(self):
        """The binary stream frames are written to."""
        raise NotImplementedError

    def _process(self) -> Optional[subprocess.Popen]:
        """The child process behind the channel, when there is one."""
        return None

    def _close_streams(self) -> None:
        """Release the underlying channel resources (best-effort)."""

    # -- coordinator surface -------------------------------------------
    def start(self) -> None:
        """Start the reader thread (idempotent)."""
        if self._reader is None:
            self._reader = _FrameReaderThread(self._read_stream(),
                                              self._frames,
                                              signer=self.signer)
            self._reader.start()

    def send(self, message: dict) -> bool:
        """Write one frame; False when the channel is already dead.

        A send into a dead worker (EPIPE, closed socket) is an expected
        race — the liveness machinery, not the send path, decides what
        to do about a lost worker.
        """
        if self._closed or self._send_broken:
            return False
        try:
            with self._send_lock:
                write_frame(self._write_stream(), message,
                            signer=self.signer)
            return True
        except (OSError, ValueError):
            self._send_broken = True
            return False

    def issue_challenge(self) -> bool:
        """Deal the session nonce that keys every later frame signature.

        Signed channels only: sends the ``challenge`` frame (itself
        signed under the empty bootstrap nonce) and installs the fresh
        nonce on the signer, so a frame recorded from any other
        connection or sweep can never verify on this one.  The nonce is
        installed after signing but *before* the frame reaches the
        wire, so the reader thread can never see a response signed
        under a nonce we have not adopted yet.  No-op on unsigned
        channels.
        """
        if self.signer is None:
            return True
        if self._closed or self._send_broken:
            return False
        nonce = os.urandom(16).hex()
        try:
            with self._send_lock:
                frame = encode_frame({"type": "challenge", "nonce": nonce},
                                     signer=self.signer)
                self.signer.nonce = nonce
                stream = self._write_stream()
                stream.write(frame)
                stream.flush()
            return True
        except (OSError, ValueError):
            self._send_broken = True
            return False

    def poll(self) -> list:
        """Drain everything the reader has queued, without blocking.

        Items are message dicts, :class:`FrameError` instances
        (malformed frame), or :data:`CHANNEL_CLOSED` (EOF).
        """
        drained = []
        while True:
            try:
                drained.append(self._frames.get_nowait())
            except queue.Empty:
                return drained

    def alive(self) -> bool:
        """True while the underlying process (if any) is still running."""
        if self._closed:
            return False
        process = self._process()
        if process is not None:
            return process.poll() is None
        return not self._send_broken

    def kill(self) -> None:
        """Hard-kill the worker process (no-op without one)."""
        process = self._process()
        if process is not None:
            try:
                process.kill()
            except OSError:  # pragma: no cover - already dead
                pass

    def describe(self) -> dict:
        """Identity fields for events and health snapshots."""
        process = self._process()
        return {"transport": type(self).__name__,
                "pid": process.pid if process is not None else None}

    def close(self, timeout_s: float = 5.0) -> None:
        """Tear the channel down with a bounded join.

        Terminate → bounded wait → kill → bounded wait, then close the
        pipe/socket handles, so a hung worker cannot leak a zombie (or
        an open descriptor) past coordinator teardown.
        """
        if self._closed:
            return
        self._closed = True
        process = self._process()
        if process is not None and process.poll() is None:
            try:
                process.terminate()
            except OSError:  # pragma: no cover - already dead
                pass
            try:
                process.wait(timeout=timeout_s)
            except subprocess.TimeoutExpired:
                try:
                    process.kill()
                    process.wait(timeout=timeout_s)
                except (OSError,
                        subprocess.TimeoutExpired):  # pragma: no cover
                    pass
        self._close_streams()


class StdioTransport(WorkerTransport):
    """A worker child framed over its stdin/stdout pipes.

    ``launch`` spawns ``python -m repro.fabric.worker`` with stderr
    inherited (worker tracebacks surface in the parent's console/CI
    log) and stdout reserved exclusively for frames — the worker
    rebinds its own ``sys.stdout`` to stderr so stray prints cannot
    corrupt the framing.
    """

    def __init__(self, name: str, process: subprocess.Popen,
                 signer: Optional[FrameSigner] = None):
        super().__init__(name, signer=signer)
        self.process = process
        self.start()

    @classmethod
    def launch(cls, name: str,
               heartbeat_s: Optional[float] = None,
               chaos_json: Optional[str] = None,
               protocol: Optional[int] = None,
               secret: Optional[str] = None) -> "StdioTransport":
        """Spawn one stdio worker and wrap its pipes as a transport."""
        process = subprocess.Popen(
            worker_command(name, heartbeat_s=heartbeat_s,
                           chaos_json=chaos_json, protocol=protocol),
            stdin=subprocess.PIPE, stdout=subprocess.PIPE,
            env=worker_environment(secret=secret))
        signer = FrameSigner(secret) if secret is not None else None
        transport = cls(name, process, signer=signer)
        transport.issue_challenge()
        return transport

    def _read_stream(self):
        return self.process.stdout

    def _write_stream(self):
        return self.process.stdin

    def _process(self) -> Optional[subprocess.Popen]:
        return self.process

    def _close_streams(self) -> None:
        for stream in (self.process.stdin, self.process.stdout):
            if stream is not None:
                try:
                    stream.close()
                except OSError:  # pragma: no cover - already closed
                    pass


class TcpTransport(WorkerTransport):
    """A worker framed over a connected TCP socket.

    Built by :meth:`TcpListener.accept`; carries the socket plus (for
    locally launched workers) the child process handle so ``kill`` and
    the bounded ``close`` work exactly as for stdio workers.  Reads go
    through :class:`_SocketReaderThread`, whose mid-frame deadline
    turns a half-open socket or a slow-loris peer into a quarantinable
    :class:`FrameError` instead of a forever-blocked reader.
    """

    def __init__(self, name: str, sock: socket.socket,
                 process: Optional[subprocess.Popen] = None,
                 signer: Optional[FrameSigner] = None,
                 read_deadline_s: float = DEFAULT_READ_DEADLINE_S):
        super().__init__(name, signer=signer)
        self.sock = sock
        self.process = process
        self._read_deadline_s = read_deadline_s
        try:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_KEEPALIVE, 1)
        except OSError:  # pragma: no cover - exotic socket type
            pass
        self._tx = sock.makefile("wb")
        self.start()

    def start(self) -> None:
        """Start the deadline-aware socket reader (idempotent)."""
        if self._reader is None:
            self._reader = _SocketReaderThread(
                self.sock, self._frames, signer=self.signer,
                read_deadline_s=self._read_deadline_s)
            self._reader.start()

    def _read_stream(self):  # pragma: no cover - reader is socket-level
        return self.sock

    def _write_stream(self):
        return self._tx

    def _process(self) -> Optional[subprocess.Popen]:
        return self.process

    def alive(self) -> bool:
        """True while the socket (and the child, if local) is usable."""
        if self._closed or self._send_broken:
            return False
        if self.process is not None and self.process.poll() is not None:
            return False
        return True

    def _close_streams(self) -> None:
        try:
            self._tx.close()
        except OSError:  # pragma: no cover - already closed
            pass
        try:
            self.sock.close()
        except OSError:  # pragma: no cover - already closed
            pass


class TcpListener:
    """The coordinator's accept socket for TCP workers.

    Binds ``host:port`` (port 0 = ephemeral) at construction so the
    bound :attr:`address` can be handed to workers before any of them
    dial in.  Binding a non-loopback host turns the coordinator
    multi-host: remote workers join with ``repro fabric-worker
    --connect``.  ``secret``/``read_deadline_s`` configure every
    accepted transport's frame authentication and mid-frame read
    deadline; each accept gets its own :class:`FrameSigner` and a
    fresh challenge nonce.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 secret: Optional[str] = None,
                 read_deadline_s: float = DEFAULT_READ_DEADLINE_S):
        self.secret = secret
        self.read_deadline_s = read_deadline_s
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host, port))
        self._sock.listen()

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) workers should connect to."""
        return self._sock.getsockname()[:2]

    @property
    def connect_arg(self) -> str:
        """The ``--connect host:port`` value for :func:`worker_command`."""
        host, port = self.address
        return f"{host}:{port}"

    def _wrap(self, conn: socket.socket, name: str,
              process: Optional[subprocess.Popen]) -> TcpTransport:
        """Wrap one accepted socket: signer, transport, challenge."""
        signer = (FrameSigner(self.secret)
                  if self.secret is not None else None)
        transport = TcpTransport(name, conn, process=process,
                                 signer=signer,
                                 read_deadline_s=self.read_deadline_s)
        transport.issue_challenge()
        return transport

    def accept(self, timeout_s: float = 10.0,
               name: str = "tcp-worker",
               process: Optional[subprocess.Popen] = None) -> TcpTransport:
        """Accept one connection and wrap it as a :class:`TcpTransport`.

        Raises :class:`TimeoutError` when no worker dials in within
        ``timeout_s`` — the caller treats that worker as lost at birth.
        """
        self._sock.settimeout(timeout_s)
        try:
            conn, _addr = self._sock.accept()
        except socket.timeout:
            raise TimeoutError(
                f"no worker connected within {timeout_s:.1f}s")
        finally:
            self._sock.settimeout(None)
        return self._wrap(conn, name, process)

    def poll_accept(self, name: str = "tcp-worker"
                    ) -> Optional[TcpTransport]:
        """Accept one pending connection without blocking, or ``None``.

        The coordinator calls this every loop tick so reconnecting (and
        late-joining) workers can enter mid-sweep instead of only at
        fleet launch.
        """
        if not select.select([self._sock], [], [], 0)[0]:
            return None
        self._sock.settimeout(0.0)
        try:
            conn, _addr = self._sock.accept()
        except (BlockingIOError, socket.timeout,
                OSError):  # pragma: no cover - accept raced a reset
            return None
        finally:
            self._sock.settimeout(None)
        return self._wrap(conn, name, process=None)

    def close(self) -> None:
        """Close the accept socket."""
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - already closed
            pass


def launch_stdio_workers(count: int,
                         heartbeat_s: Optional[float] = None,
                         chaos_json: Optional[str] = None,
                         secret: Optional[str] = None
                         ) -> list[StdioTransport]:
    """Spawn ``count`` stdio workers named ``worker-0..N-1``."""
    return [StdioTransport.launch(f"worker-{index}",
                                  heartbeat_s=heartbeat_s,
                                  chaos_json=chaos_json,
                                  secret=secret)
            for index in range(count)]


def launch_tcp_workers(count: int, listener: TcpListener,
                       heartbeat_s: Optional[float] = None,
                       chaos_json: Optional[str] = None,
                       accept_timeout_s: float = 30.0
                       ) -> list[TcpTransport]:
    """Spawn ``count`` local TCP workers and accept them all.

    Each child is launched with ``--connect`` pointing at the listener;
    transports are returned in accept order (identity comes from the
    hello frame, not the accept order).  The listener's ``secret``
    rides to the children through the environment so both ends sign.
    Children that never dial in are killed before the
    :class:`TimeoutError` propagates.
    """
    processes = [
        subprocess.Popen(
            worker_command(f"worker-{index}",
                           connect=listener.connect_arg,
                           heartbeat_s=heartbeat_s,
                           chaos_json=chaos_json),
            env=worker_environment(secret=listener.secret))
        for index in range(count)
    ]
    transports: list[TcpTransport] = []
    deadline = time.monotonic() + accept_timeout_s
    try:
        for index in range(count):
            remaining = max(0.1, deadline - time.monotonic())
            transports.append(listener.accept(
                timeout_s=remaining, name=f"tcp-{index}",
                process=processes[index]))
    except TimeoutError:
        for process in processes:
            if process.poll() is None:
                process.kill()
        raise
    return transports


def close_transports(transports: Sequence[WorkerTransport],
                     timeout_s: float = 5.0) -> None:
    """Close every transport with the bounded teardown ladder."""
    for transport in transports:
        transport.close(timeout_s=timeout_s)


__all__ = [
    "CHANNEL_CLOSED",
    "DEFAULT_READ_DEADLINE_S",
    "StdioTransport",
    "TcpListener",
    "TcpTransport",
    "WorkerTransport",
    "close_transports",
    "launch_stdio_workers",
    "launch_tcp_workers",
    "worker_command",
    "worker_environment",
]
