"""Coordinator-side worker transports: stdio subprocess pipes and TCP.

A :class:`WorkerTransport` is the coordinator's handle on one remote
worker: a framed byte channel (:mod:`repro.fabric.protocol`) plus
lifecycle control.  Two concrete transports:

- :class:`StdioTransport` spawns ``python -m repro.fabric.worker`` as a
  child process and frames over its stdin/stdout pipes — zero
  configuration, works anywhere a subprocess does, and the natural
  first rung of the distributed ladder (the same shape mongodb-d4's
  message-channel experiment API uses);
- :class:`TcpTransport` frames over a connected socket accepted by a
  :class:`TcpListener` — the "other hosts" rung.  The bundled launcher
  still spawns local worker processes that dial back in (CI-friendly),
  but the listener accepts any worker that completes the handshake.

Each transport runs a daemon **reader thread** that decodes frames off
the channel into a queue; :meth:`WorkerTransport.poll` drains that
queue without blocking, returning message dicts interleaved with
:class:`~repro.fabric.protocol.FrameError` (malformed frame — the
quarantine signal) and :data:`CHANNEL_CLOSED` (EOF — the worker-lost
signal).  ``close`` joins the child with a bounded timeout and
escalates terminate → kill, so a wedged worker can never leak a zombie
past the coordinator's teardown (the same bounded-teardown contract as
:func:`repro.experiments.supervisor._kill_pool`).
"""

from __future__ import annotations

import os
import queue
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path
from typing import Optional, Sequence

from repro.fabric.protocol import FrameError, read_frame, write_frame

#: Sentinel queued by the reader thread when the channel reaches EOF.
CHANNEL_CLOSED = object()


def _src_root() -> Path:
    """The directory that must be on ``PYTHONPATH`` to import ``repro``."""
    import repro

    return Path(repro.__file__).resolve().parents[1]


def worker_environment() -> dict:
    """Spawn environment for a worker: parent env + importable ``repro``."""
    env = dict(os.environ)
    src = str(_src_root())
    existing = env.get("PYTHONPATH")
    if existing:
        if src not in existing.split(os.pathsep):
            env["PYTHONPATH"] = src + os.pathsep + existing
    else:
        env["PYTHONPATH"] = src
    return env


def worker_command(worker_id: str,
                   connect: Optional[str] = None,
                   heartbeat_s: Optional[float] = None,
                   chaos_json: Optional[str] = None,
                   protocol: Optional[int] = None) -> list[str]:
    """The ``python -m repro.fabric.worker`` argv for one worker.

    ``connect`` (``host:port``) selects the TCP transport; without it
    the worker frames over stdio.  ``protocol`` overrides the version
    the worker claims in its hello — a test hook for the handshake's
    rejection path.
    """
    command = [sys.executable, "-m", "repro.fabric.worker",
               "--worker-id", worker_id]
    if connect is not None:
        command += ["--connect", connect]
    if heartbeat_s is not None:
        command += ["--heartbeat", str(heartbeat_s)]
    if chaos_json:
        command += ["--chaos", chaos_json]
    if protocol is not None:
        command += ["--protocol", str(protocol)]
    return command


class _FrameReaderThread(threading.Thread):
    """Daemon thread decoding frames off a binary stream into a queue."""

    def __init__(self, stream, frames: "queue.Queue"):
        super().__init__(daemon=True, name="fabric-frame-reader")
        self._stream = stream
        self._frames = frames

    def run(self) -> None:
        """Decode frames until EOF or a malformed frame, then stop.

        A :class:`FrameError` is queued and the thread exits: once the
        framing is out of sync nothing later on the channel can be
        trusted, so the coordinator quarantines the worker anyway.
        """
        while True:
            try:
                frame = read_frame(self._stream)
            except FrameError as error:
                self._frames.put(error)
                return
            except (OSError, ValueError):
                # The descriptor was closed under the reader (teardown).
                self._frames.put(CHANNEL_CLOSED)
                return
            if frame is None:
                self._frames.put(CHANNEL_CLOSED)
                return
            self._frames.put(frame)


class WorkerTransport:
    """One framed channel to a worker, with bounded lifecycle control.

    Subclasses provide the byte streams and process handle; this base
    owns the reader thread, the send lock, and the teardown ladder.
    """

    def __init__(self, name: str):
        self.name = name
        self._frames: "queue.Queue" = queue.Queue()
        self._send_lock = threading.Lock()
        self._reader: Optional[_FrameReaderThread] = None
        self._closed = False
        self._send_broken = False

    # -- subclass surface ----------------------------------------------
    def _read_stream(self):
        """The binary stream frames are read from."""
        raise NotImplementedError

    def _write_stream(self):
        """The binary stream frames are written to."""
        raise NotImplementedError

    def _process(self) -> Optional[subprocess.Popen]:
        """The child process behind the channel, when there is one."""
        return None

    def _close_streams(self) -> None:
        """Release the underlying channel resources (best-effort)."""

    # -- coordinator surface -------------------------------------------
    def start(self) -> None:
        """Start the reader thread (idempotent)."""
        if self._reader is None:
            self._reader = _FrameReaderThread(self._read_stream(),
                                              self._frames)
            self._reader.start()

    def send(self, message: dict) -> bool:
        """Write one frame; False when the channel is already dead.

        A send into a dead worker (EPIPE, closed socket) is an expected
        race — the liveness machinery, not the send path, decides what
        to do about a lost worker.
        """
        if self._closed or self._send_broken:
            return False
        try:
            with self._send_lock:
                write_frame(self._write_stream(), message)
            return True
        except (OSError, ValueError):
            self._send_broken = True
            return False

    def poll(self) -> list:
        """Drain everything the reader has queued, without blocking.

        Items are message dicts, :class:`FrameError` instances
        (malformed frame), or :data:`CHANNEL_CLOSED` (EOF).
        """
        drained = []
        while True:
            try:
                drained.append(self._frames.get_nowait())
            except queue.Empty:
                return drained

    def alive(self) -> bool:
        """True while the underlying process (if any) is still running."""
        if self._closed:
            return False
        process = self._process()
        if process is not None:
            return process.poll() is None
        return not self._send_broken

    def kill(self) -> None:
        """Hard-kill the worker process (no-op without one)."""
        process = self._process()
        if process is not None:
            try:
                process.kill()
            except OSError:  # pragma: no cover - already dead
                pass

    def describe(self) -> dict:
        """Identity fields for events and health snapshots."""
        process = self._process()
        return {"transport": type(self).__name__,
                "pid": process.pid if process is not None else None}

    def close(self, timeout_s: float = 5.0) -> None:
        """Tear the channel down with a bounded join.

        Terminate → bounded wait → kill → bounded wait, then close the
        pipe/socket handles, so a hung worker cannot leak a zombie (or
        an open descriptor) past coordinator teardown.
        """
        if self._closed:
            return
        self._closed = True
        process = self._process()
        if process is not None and process.poll() is None:
            try:
                process.terminate()
            except OSError:  # pragma: no cover - already dead
                pass
            try:
                process.wait(timeout=timeout_s)
            except subprocess.TimeoutExpired:
                try:
                    process.kill()
                    process.wait(timeout=timeout_s)
                except (OSError,
                        subprocess.TimeoutExpired):  # pragma: no cover
                    pass
        self._close_streams()


class StdioTransport(WorkerTransport):
    """A worker child framed over its stdin/stdout pipes.

    ``launch`` spawns ``python -m repro.fabric.worker`` with stderr
    inherited (worker tracebacks surface in the parent's console/CI
    log) and stdout reserved exclusively for frames — the worker
    rebinds its own ``sys.stdout`` to stderr so stray prints cannot
    corrupt the framing.
    """

    def __init__(self, name: str, process: subprocess.Popen):
        super().__init__(name)
        self.process = process
        self.start()

    @classmethod
    def launch(cls, name: str,
               heartbeat_s: Optional[float] = None,
               chaos_json: Optional[str] = None,
               protocol: Optional[int] = None) -> "StdioTransport":
        """Spawn one stdio worker and wrap its pipes as a transport."""
        process = subprocess.Popen(
            worker_command(name, heartbeat_s=heartbeat_s,
                           chaos_json=chaos_json, protocol=protocol),
            stdin=subprocess.PIPE, stdout=subprocess.PIPE,
            env=worker_environment())
        return cls(name, process)

    def _read_stream(self):
        return self.process.stdout

    def _write_stream(self):
        return self.process.stdin

    def _process(self) -> Optional[subprocess.Popen]:
        return self.process

    def _close_streams(self) -> None:
        for stream in (self.process.stdin, self.process.stdout):
            if stream is not None:
                try:
                    stream.close()
                except OSError:  # pragma: no cover - already closed
                    pass


class TcpTransport(WorkerTransport):
    """A worker framed over a connected TCP socket.

    Built by :meth:`TcpListener.accept`; carries the socket plus (for
    locally launched workers) the child process handle so ``kill`` and
    the bounded ``close`` work exactly as for stdio workers.
    """

    def __init__(self, name: str, sock: socket.socket,
                 process: Optional[subprocess.Popen] = None):
        super().__init__(name)
        self.sock = sock
        self.process = process
        self._rx = sock.makefile("rb")
        self._tx = sock.makefile("wb")
        self.start()

    def _read_stream(self):
        return self._rx

    def _write_stream(self):
        return self._tx

    def _process(self) -> Optional[subprocess.Popen]:
        return self.process

    def alive(self) -> bool:
        """True while the socket (and the child, if local) is usable."""
        if self._closed or self._send_broken:
            return False
        if self.process is not None and self.process.poll() is not None:
            return False
        return True

    def _close_streams(self) -> None:
        for handle in (self._rx, self._tx):
            try:
                handle.close()
            except OSError:  # pragma: no cover - already closed
                pass
        try:
            self.sock.close()
        except OSError:  # pragma: no cover - already closed
            pass


class TcpListener:
    """The coordinator's accept socket for TCP workers.

    Binds ``host:port`` (port 0 = ephemeral) at construction so the
    bound :attr:`address` can be handed to workers before any of them
    dial in.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0):
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host, port))
        self._sock.listen()

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) workers should connect to."""
        return self._sock.getsockname()[:2]

    @property
    def connect_arg(self) -> str:
        """The ``--connect host:port`` value for :func:`worker_command`."""
        host, port = self.address
        return f"{host}:{port}"

    def accept(self, timeout_s: float = 10.0,
               name: str = "tcp-worker",
               process: Optional[subprocess.Popen] = None) -> TcpTransport:
        """Accept one connection and wrap it as a :class:`TcpTransport`.

        Raises :class:`TimeoutError` when no worker dials in within
        ``timeout_s`` — the caller treats that worker as lost at birth.
        """
        self._sock.settimeout(timeout_s)
        try:
            conn, _addr = self._sock.accept()
        except socket.timeout:
            raise TimeoutError(
                f"no worker connected within {timeout_s:.1f}s")
        finally:
            self._sock.settimeout(None)
        return TcpTransport(name, conn, process=process)

    def close(self) -> None:
        """Close the accept socket."""
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - already closed
            pass


def launch_stdio_workers(count: int,
                         heartbeat_s: Optional[float] = None,
                         chaos_json: Optional[str] = None
                         ) -> list[StdioTransport]:
    """Spawn ``count`` stdio workers named ``worker-0..N-1``."""
    return [StdioTransport.launch(f"worker-{index}",
                                  heartbeat_s=heartbeat_s,
                                  chaos_json=chaos_json)
            for index in range(count)]


def launch_tcp_workers(count: int, listener: TcpListener,
                       heartbeat_s: Optional[float] = None,
                       chaos_json: Optional[str] = None,
                       accept_timeout_s: float = 30.0
                       ) -> list[TcpTransport]:
    """Spawn ``count`` local TCP workers and accept them all.

    Each child is launched with ``--connect`` pointing at the listener;
    transports are returned in accept order (identity comes from the
    hello frame, not the accept order).  Children that never dial in
    are killed before the :class:`TimeoutError` propagates.
    """
    processes = [
        subprocess.Popen(
            worker_command(f"worker-{index}",
                           connect=listener.connect_arg,
                           heartbeat_s=heartbeat_s,
                           chaos_json=chaos_json),
            env=worker_environment())
        for index in range(count)
    ]
    transports: list[TcpTransport] = []
    deadline = time.monotonic() + accept_timeout_s
    try:
        for index in range(count):
            remaining = max(0.1, deadline - time.monotonic())
            transports.append(listener.accept(
                timeout_s=remaining, name=f"tcp-{index}",
                process=processes[index]))
    except TimeoutError:
        for process in processes:
            if process.poll() is None:
                process.kill()
        raise
    return transports


def close_transports(transports: Sequence[WorkerTransport],
                     timeout_s: float = 5.0) -> None:
    """Close every transport with the bounded teardown ladder."""
    for transport in transports:
        transport.close(timeout_s=timeout_s)


__all__ = [
    "CHANNEL_CLOSED",
    "StdioTransport",
    "TcpListener",
    "TcpTransport",
    "WorkerTransport",
    "close_transports",
    "launch_stdio_workers",
    "launch_tcp_workers",
    "worker_command",
    "worker_environment",
]
