"""The fabric wire protocol: schema-checked, length-prefixed JSON frames.

Every message between the coordinator and a worker is one **frame**: a
4-byte big-endian payload length followed by that many bytes of UTF-8
JSON.  The JSON object must carry a ``type`` key naming one of the
message types below, and every required field of that type must be
present with the right JSON shape — anything else raises
:class:`FrameError`, which the coordinator treats as grounds to
quarantine the *worker*, never to fail the sweep (DESIGN.md §12).

Message types (required fields):

- ``hello`` (worker → coordinator): ``worker_id``, ``protocol``,
  ``host``, ``pid`` — the handshake opener.  A ``protocol`` other than
  :data:`PROTOCOL_VERSION` is rejected.
- ``welcome`` / ``reject`` (coordinator → worker): handshake close.
- ``lease`` (coordinator → worker): ``lease_id``, ``key``, ``attempt``,
  ``spec``, ``use_cache`` — one time-bounded grant of one sweep point.
  ``spec`` is the :class:`~repro.experiments.parallel.RunSpec` as an
  opaque base64 blob (:func:`encode_spec`): the coordinator spawns its
  own workers from the same code tree, and the protocol-version
  handshake gates compatibility.
- ``result`` (worker → coordinator): ``lease_id``, ``key``, ``result``,
  ``checksum`` — the point's serialized
  :class:`~repro.experiments.records.ConfigResult` plus its payload
  checksum; optional ``manifest``/``trace``/``metrics`` dicts carry the
  run's telemetry.
- ``error`` (worker → coordinator): ``lease_id``, ``key``, ``error`` —
  the point raised; the coordinator retries under its backoff policy.
- ``heartbeat`` (worker → coordinator): ``worker_id`` — liveness.
- ``shutdown`` (coordinator → worker): drain and exit.

Unknown *extra* fields are allowed (forward compatibility); unknown
message *types* are not.
"""

from __future__ import annotations

import base64
import json
import pickle
from typing import BinaryIO, Optional

#: Protocol generation carried in the ``hello`` handshake.  Bump on any
#: incompatible frame-shape change so a stale worker is rejected at
#: connect time instead of corrupting a sweep later.
PROTOCOL_VERSION = 1

#: Bytes of big-endian frame-length header preceding every payload.
HEADER_BYTES = 4

#: Upper bound on one frame's payload; anything larger is corruption
#: (a full telemetry result is a few hundred KB).
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: Required fields (name → JSON type) per message type.  ``None`` in a
#: tuple means the field may also be null.
MESSAGE_SCHEMAS: dict[str, dict[str, tuple]] = {
    "hello": {"worker_id": (str,), "protocol": (int,), "host": (str,),
              "pid": (int,)},
    "welcome": {"protocol": (int,)},
    "reject": {"reason": (str,)},
    "lease": {"lease_id": (str,), "key": (str,), "attempt": (int,),
              "spec": (str,), "use_cache": (bool,)},
    "result": {"lease_id": (str,), "key": (str,), "result": (dict,),
               "checksum": (str,)},
    "error": {"lease_id": (str,), "key": (str,), "error": (str,)},
    "heartbeat": {"worker_id": (str,)},
    "shutdown": {},
}


class FrameError(ValueError):
    """A frame failed byte-level or schema-level validation."""


class HandshakeError(RuntimeError):
    """The protocol-version handshake failed (stale or foreign worker)."""


def validate_message(message: object) -> dict:
    """Schema-check one decoded message; returns it or raises FrameError.

    Checks the ``type`` key names a known message and that every
    required field is present with the expected JSON type.  Extra
    fields pass through untouched.
    """
    if not isinstance(message, dict):
        raise FrameError(f"frame payload is {type(message).__name__}, "
                         f"not an object")
    kind = message.get("type")
    schema = MESSAGE_SCHEMAS.get(kind) if isinstance(kind, str) else None
    if schema is None:
        raise FrameError(f"unknown message type {kind!r}")
    for name, types in schema.items():
        if name not in message:
            raise FrameError(f"{kind} frame is missing field {name!r}")
        value = message[name]
        # bool is an int subclass; an int field must not accept True.
        if isinstance(value, bool) and bool not in types:
            raise FrameError(f"{kind}.{name} must be "
                             f"{'/'.join(t.__name__ for t in types)}, "
                             f"got bool")
        if not isinstance(value, tuple(types)):
            raise FrameError(f"{kind}.{name} must be "
                             f"{'/'.join(t.__name__ for t in types)}, "
                             f"got {type(value).__name__}")
    return message


def encode_frame(message: dict) -> bytes:
    """Validate and serialize one message to its on-wire frame bytes."""
    validate_message(message)
    body = json.dumps(message, sort_keys=True).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise FrameError(f"frame payload of {len(body)} bytes exceeds "
                         f"the {MAX_FRAME_BYTES}-byte bound")
    return len(body).to_bytes(HEADER_BYTES, "big") + body


def decode_frame(body: bytes) -> dict:
    """Parse and schema-check one frame payload (sans length header)."""
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise FrameError(f"frame payload is not valid JSON: {error}")
    return validate_message(message)


def _read_exactly(stream: BinaryIO, count: int) -> bytes:
    """Read exactly ``count`` bytes, tolerating short reads from pipes."""
    chunks = []
    remaining = count
    while remaining > 0:
        chunk = stream.read(remaining)
        if not chunk:
            break
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(stream: BinaryIO) -> Optional[dict]:
    """Read one frame from a binary stream.

    Returns the validated message, or ``None`` on a clean EOF (the peer
    closed between frames).  EOF *inside* a frame, an absurd length, or
    an undecodable payload raises :class:`FrameError` — the caller's cue
    to quarantine the peer.
    """
    header = _read_exactly(stream, HEADER_BYTES)
    if not header:
        return None
    if len(header) < HEADER_BYTES:
        raise FrameError(f"truncated frame header ({len(header)} of "
                         f"{HEADER_BYTES} bytes)")
    length = int.from_bytes(header, "big")
    if length <= 0 or length > MAX_FRAME_BYTES:
        raise FrameError(f"frame length {length} outside "
                         f"(0, {MAX_FRAME_BYTES}]")
    body = _read_exactly(stream, length)
    if len(body) < length:
        raise FrameError(f"truncated frame payload ({len(body)} of "
                         f"{length} bytes)")
    return decode_frame(body)


def write_frame(stream: BinaryIO, message: dict) -> None:
    """Encode ``message`` and write it to the stream, flushed."""
    stream.write(encode_frame(message))
    stream.flush()


def encode_spec(spec) -> str:
    """Serialize a :class:`RunSpec` for the ``lease.spec`` field.

    Base64-wrapped pickle: the spec carries nested dataclasses (machine
    config, runner settings, fault plan) that are picklable by design —
    they already cross the process-pool boundary — and the coordinator
    only ever leases to workers it spawned from the same code tree.
    """
    return base64.b64encode(
        pickle.dumps(spec, protocol=pickle.HIGHEST_PROTOCOL)).decode("ascii")


def decode_spec(text: str):
    """Rebuild the :class:`RunSpec` from a ``lease.spec`` field."""
    try:
        return pickle.loads(base64.b64decode(text.encode("ascii")))
    except Exception as error:
        raise FrameError(f"lease spec does not decode: {error!r}")


__all__ = [
    "FrameError",
    "HandshakeError",
    "HEADER_BYTES",
    "MAX_FRAME_BYTES",
    "MESSAGE_SCHEMAS",
    "PROTOCOL_VERSION",
    "decode_frame",
    "decode_spec",
    "encode_frame",
    "encode_spec",
    "read_frame",
    "validate_message",
    "write_frame",
]
