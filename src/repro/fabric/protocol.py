"""The fabric wire protocol: schema-checked, length-prefixed JSON frames.

Every message between the coordinator and a worker is one **frame**: a
4-byte big-endian payload length followed by that many bytes of UTF-8
JSON.  The JSON object must carry a ``type`` key naming one of the
message types below, and every required field of that type must be
present with the right JSON shape — anything else raises
:class:`FrameError`, which the coordinator treats as grounds to
quarantine the *worker*, never to fail the sweep (DESIGN.md §12).

**Authenticated framing** (DESIGN.md §16).  When both sides share a
secret (``--fabric-secret`` file or ``REPRO_FABRIC_SECRET`` env; see
:func:`resolve_fabric_secret`), every frame payload is prefixed with a
32-byte HMAC-SHA256 signature computed by a per-connection
:class:`FrameSigner` over ``nonce || sequence || body``.  The nonce is
dealt by the coordinator in a ``challenge`` frame at connect time, so
a frame captured from another sweep (different nonce) or replayed
within a session (stale sequence) fails verification with
:class:`FrameAuthError` — a single-line, non-crashing rejection.
Without a secret the wire format is byte-identical to protocol v1
unsigned frames.

Message types (required fields):

- ``challenge`` (coordinator → worker, signed sessions only):
  ``nonce`` — dealt before anything else; all later frames are signed
  under it.
- ``hello`` (worker → coordinator): ``worker_id``, ``protocol``,
  ``host``, ``pid`` — the handshake opener.  A ``protocol`` other than
  :data:`PROTOCOL_VERSION` is rejected.  Optional ``token`` resumes a
  previous session after a reconnect, and optional ``resuming``
  (``{"lease_id", "key"}``) names a lease the worker still holds so
  the coordinator can re-validate it instead of double-executing.
- ``welcome`` / ``reject`` (coordinator → worker): handshake close.
  ``welcome`` carries a ``token`` the worker presents when
  reconnecting.
- ``lease`` (coordinator → worker): ``lease_id``, ``key``, ``attempt``,
  ``spec``, ``use_cache`` — one time-bounded grant of one sweep point.
  ``spec`` is the :class:`~repro.experiments.parallel.RunSpec` as an
  opaque base64 blob (:func:`encode_spec`): the coordinator spawns its
  own workers from the same code tree, and the protocol-version
  handshake gates compatibility.
- ``result`` (worker → coordinator): ``lease_id``, ``key``, ``result``,
  ``checksum`` — the point's serialized
  :class:`~repro.experiments.records.ConfigResult` plus its payload
  checksum; optional ``manifest``/``trace``/``metrics`` dicts carry the
  run's telemetry.
- ``error`` (worker → coordinator): ``lease_id``, ``key``, ``error`` —
  the point raised; the coordinator retries under its backoff policy.
- ``heartbeat`` (worker → coordinator): ``worker_id`` — liveness.
- ``shutdown`` (coordinator → worker): drain and exit.

Unknown *extra* fields are allowed (forward compatibility); unknown
message *types* are not.
"""

from __future__ import annotations

import base64
import hashlib
import hmac
import json
import os
import pickle
from pathlib import Path
from typing import BinaryIO, Optional, Union

#: Protocol generation carried in the ``hello`` handshake.  Bump on any
#: incompatible frame-shape change so a stale worker is rejected at
#: connect time instead of corrupting a sweep later.  v2 added the
#: ``challenge`` auth handshake and the token/resume fields.
PROTOCOL_VERSION = 2

#: Bytes of big-endian frame-length header preceding every payload.
HEADER_BYTES = 4

#: Bytes of HMAC-SHA256 signature prefixed to signed frame payloads.
SIGNATURE_BYTES = 32

#: Upper bound on one frame's payload; anything larger is corruption
#: (a full telemetry result is a few hundred KB).
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: Environment variable holding the shared fabric secret (literal).
SECRET_ENV = "REPRO_FABRIC_SECRET"

#: Required fields (name → JSON type) per message type.  ``None`` in a
#: tuple means the field may also be null.
MESSAGE_SCHEMAS: dict[str, dict[str, tuple]] = {
    "challenge": {"nonce": (str,)},
    "hello": {"worker_id": (str,), "protocol": (int,), "host": (str,),
              "pid": (int,)},
    "welcome": {"protocol": (int,)},
    "reject": {"reason": (str,)},
    "lease": {"lease_id": (str,), "key": (str,), "attempt": (int,),
              "spec": (str,), "use_cache": (bool,)},
    "result": {"lease_id": (str,), "key": (str,), "result": (dict,),
               "checksum": (str,)},
    "error": {"lease_id": (str,), "key": (str,), "error": (str,)},
    "heartbeat": {"worker_id": (str,)},
    "shutdown": {},
}


class FrameError(ValueError):
    """A frame failed byte-level or schema-level validation."""


class FrameAuthError(FrameError):
    """A frame failed HMAC verification (forged, replayed, cross-sweep).

    A subclass of :class:`FrameError` so every existing quarantine path
    handles it, while the coordinator can still tell an authentication
    rejection (``fabric.auth.rejected``) from plain corruption.
    """


class HandshakeError(RuntimeError):
    """The protocol-version handshake failed (stale or foreign worker)."""


def resolve_fabric_secret(path: Optional[Union[str, Path]] = None
                          ) -> Optional[str]:
    """The shared fabric secret, or ``None`` (unauthenticated framing).

    ``path`` (the ``--fabric-secret`` flag) names a file whose stripped
    contents are the secret; it takes precedence over the
    :data:`SECRET_ENV` environment variable.  An unreadable or empty
    secret file raises a single-line :class:`ValueError`.
    """
    if path:
        try:
            secret = Path(path).read_text(encoding="utf-8").strip()
        except OSError as error:
            raise ValueError(f"cannot read fabric secret file "
                             f"{str(path)!r}: {error}")
        if not secret:
            raise ValueError(f"fabric secret file {str(path)!r} is empty")
        return secret
    secret = os.environ.get(SECRET_ENV)
    return secret if secret else None


class FrameSigner:
    """Per-connection frame authentication state (one per channel side).

    Holds the shared secret, the session nonce (empty until the
    ``challenge`` frame deals one), and one monotonically increasing
    sequence counter per direction.  The signature of the N-th frame a
    side sends is ``HMAC-SHA256(secret, nonce || N || body)``, so:

    - a peer without the secret cannot produce a valid signature;
    - a frame recorded from another connection/sweep carries a
      different nonce and fails verification (cross-sweep replay);
    - a frame replayed within the session carries a stale sequence
      number and fails verification (in-session replay).

    Verification failures raise :class:`FrameAuthError`.  The send path
    must already be serialized by the channel's send lock; the receive
    path runs on the single reader thread.
    """

    def __init__(self, secret: str, nonce: str = ""):
        self._key = secret.encode("utf-8")
        self.nonce = nonce
        self.send_seq = 0
        self.recv_seq = 0

    def _mac(self, seq: int, body: bytes) -> bytes:
        message = (self.nonce.encode("utf-8")
                   + seq.to_bytes(8, "big") + body)
        return hmac.new(self._key, message, hashlib.sha256).digest()

    def sign(self, body: bytes) -> bytes:
        """Signature for the next outbound frame; advances the counter."""
        signature = self._mac(self.send_seq, body)
        self.send_seq += 1
        return signature

    def verify(self, signature: bytes, body: bytes) -> None:
        """Check one inbound frame's signature; advances the counter."""
        expected = self._mac(self.recv_seq, body)
        if not hmac.compare_digest(signature, expected):
            raise FrameAuthError(
                f"frame signature rejected at seq {self.recv_seq} "
                f"(wrong secret, replayed frame, or cross-sweep nonce)")
        self.recv_seq += 1


def validate_message(message: object) -> dict:
    """Schema-check one decoded message; returns it or raises FrameError.

    Checks the ``type`` key names a known message and that every
    required field is present with the expected JSON type.  Extra
    fields pass through untouched.
    """
    if not isinstance(message, dict):
        raise FrameError(f"frame payload is {type(message).__name__}, "
                         f"not an object")
    kind = message.get("type")
    schema = MESSAGE_SCHEMAS.get(kind) if isinstance(kind, str) else None
    if schema is None:
        raise FrameError(f"unknown message type {kind!r}")
    for name, types in schema.items():
        if name not in message:
            raise FrameError(f"{kind} frame is missing field {name!r}")
        value = message[name]
        # bool is an int subclass; an int field must not accept True.
        if isinstance(value, bool) and bool not in types:
            raise FrameError(f"{kind}.{name} must be "
                             f"{'/'.join(t.__name__ for t in types)}, "
                             f"got bool")
        if not isinstance(value, tuple(types)):
            raise FrameError(f"{kind}.{name} must be "
                             f"{'/'.join(t.__name__ for t in types)}, "
                             f"got {type(value).__name__}")
    return message


def encode_frame(message: dict,
                 signer: Optional[FrameSigner] = None) -> bytes:
    """Validate and serialize one message to its on-wire frame bytes.

    With a ``signer`` the payload is prefixed by its 32-byte HMAC and
    the length header covers signature plus body.
    """
    validate_message(message)
    body = json.dumps(message, sort_keys=True).encode("utf-8")
    payload = signer.sign(body) + body if signer is not None else body
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameError(f"frame payload of {len(payload)} bytes exceeds "
                         f"the {MAX_FRAME_BYTES}-byte bound")
    return len(payload).to_bytes(HEADER_BYTES, "big") + payload


def decode_frame(payload: bytes,
                 signer: Optional[FrameSigner] = None) -> dict:
    """Parse and schema-check one frame payload (sans length header).

    With a ``signer`` the payload must lead with a valid 32-byte HMAC;
    anything else raises :class:`FrameAuthError` before the body is
    even parsed — unauthenticated bytes never reach the JSON decoder.
    """
    if signer is not None:
        if len(payload) <= SIGNATURE_BYTES:
            raise FrameAuthError(
                f"signed frame of {len(payload)} bytes is too short to "
                f"carry a {SIGNATURE_BYTES}-byte signature")
        signature, body = (payload[:SIGNATURE_BYTES],
                           payload[SIGNATURE_BYTES:])
        signer.verify(signature, body)
    else:
        body = payload
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise FrameError(f"frame payload is not valid JSON: {error}")
    return validate_message(message)


def _read_exactly(stream: BinaryIO, count: int) -> bytes:
    """Read exactly ``count`` bytes, tolerating short reads from pipes."""
    chunks = []
    remaining = count
    while remaining > 0:
        chunk = stream.read(remaining)
        if not chunk:
            break
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(stream: BinaryIO,
               signer: Optional[FrameSigner] = None) -> Optional[dict]:
    """Read one frame from a binary stream.

    Returns the validated message, or ``None`` on a clean EOF (the peer
    closed between frames).  EOF *inside* a frame, an absurd length, or
    an undecodable payload raises :class:`FrameError` — the caller's cue
    to quarantine the peer.  With a ``signer``, an invalid signature
    raises :class:`FrameAuthError` instead.
    """
    header = _read_exactly(stream, HEADER_BYTES)
    if not header:
        return None
    if len(header) < HEADER_BYTES:
        raise FrameError(f"truncated frame header ({len(header)} of "
                         f"{HEADER_BYTES} bytes)")
    length = int.from_bytes(header, "big")
    if length <= 0 or length > MAX_FRAME_BYTES:
        raise FrameError(f"frame length {length} outside "
                         f"(0, {MAX_FRAME_BYTES}]")
    payload = _read_exactly(stream, length)
    if len(payload) < length:
        raise FrameError(f"truncated frame payload ({len(payload)} of "
                         f"{length} bytes)")
    return decode_frame(payload, signer=signer)


def write_frame(stream: BinaryIO, message: dict,
                signer: Optional[FrameSigner] = None) -> None:
    """Encode ``message`` (signed when a signer is given) and write it."""
    stream.write(encode_frame(message, signer=signer))
    stream.flush()


def encode_spec(spec) -> str:
    """Serialize a :class:`RunSpec` for the ``lease.spec`` field.

    Base64-wrapped pickle: the spec carries nested dataclasses (machine
    config, runner settings, fault plan) that are picklable by design —
    they already cross the process-pool boundary — and the coordinator
    only ever leases to workers it spawned from the same code tree.
    """
    return base64.b64encode(
        pickle.dumps(spec, protocol=pickle.HIGHEST_PROTOCOL)).decode("ascii")


def decode_spec(text: str):
    """Rebuild the :class:`RunSpec` from a ``lease.spec`` field."""
    try:
        return pickle.loads(base64.b64decode(text.encode("ascii")))
    except Exception as error:
        raise FrameError(f"lease spec does not decode: {error!r}")


__all__ = [
    "FrameAuthError",
    "FrameError",
    "FrameSigner",
    "HandshakeError",
    "HEADER_BYTES",
    "MAX_FRAME_BYTES",
    "MESSAGE_SCHEMAS",
    "PROTOCOL_VERSION",
    "SECRET_ENV",
    "SIGNATURE_BYTES",
    "decode_frame",
    "decode_spec",
    "encode_frame",
    "encode_spec",
    "read_frame",
    "resolve_fabric_secret",
    "validate_message",
    "write_frame",
]
